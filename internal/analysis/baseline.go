package analysis

// baseline.go — tracked debt for scalvet. New analyzers inevitably convict
// existing code; silencing them with blanket ignores would hide new
// regressions in the same functions. The baseline records today's findings
// in a committed JSON file keyed by (analyzer, file, symbol) — NOT by line,
// so unrelated churn above a finding does not invalidate the entry — with a
// count per key. `scalvet -baseline check` suppresses up to count findings
// per key: a *new* finding in a baselined function still fails the gate the
// moment the key's count is exceeded, and fixing debt shows up as stale
// entries to prune with `-baseline write`.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// baselineVersion guards the file format.
const baselineVersion = 1

// BaselineEntry is one unit of tracked debt.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	// File is module-root-relative with forward slashes.
	File   string `json:"file"`
	Symbol string `json:"symbol"`
	Count  int    `json:"count"`
}

func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Symbol
}

// Baseline is a loaded (or freshly computed) debt ledger.
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// NewBaseline aggregates diagnostics into a ledger, relativizing file paths
// against the module root.
func NewBaseline(root string, diags []Diagnostic) *Baseline {
	counts := map[string]*BaselineEntry{}
	for _, d := range diags {
		e := BaselineEntry{Analyzer: d.Analyzer, File: baselineFile(root, d.File), Symbol: d.Symbol}
		k := e.key()
		if have, ok := counts[k]; ok {
			have.Count++
			continue
		}
		e.Count = 1
		counts[k] = &e
	}
	b := &Baseline{Version: baselineVersion}
	for _, e := range counts {
		b.Entries = append(b.Entries, *e)
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Symbol != c.Symbol {
			return a.Symbol < c.Symbol
		}
		return a.Analyzer < c.Analyzer
	})
	return b
}

// WriteFile persists the ledger (stable formatting, trailing newline).
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads a ledger; a missing file is an empty ledger, so the
// check mode works in repos that have not adopted a baseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: baselineVersion}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("analysis: baseline %s has version %d, this scalvet reads %d (regenerate with -baseline write)",
			path, b.Version, baselineVersion)
	}
	return &b, nil
}

// Apply filters diagnostics through the ledger: per key, up to Count
// findings (in position order, as Run sorts them) are suppressed. It
// returns the findings exceeding their budget — the gate's failures — and
// the stale entries whose budget was not fully consumed, which a developer
// should prune by re-running -baseline write.
func (b *Baseline) Apply(root string, diags []Diagnostic) (remaining []Diagnostic, stale []BaselineEntry) {
	budget := map[string]int{}
	for _, e := range b.Entries {
		budget[e.key()] += e.Count
	}
	for _, d := range diags {
		k := BaselineEntry{Analyzer: d.Analyzer, File: baselineFile(root, d.File), Symbol: d.Symbol}.key()
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		remaining = append(remaining, d)
	}
	for _, e := range b.Entries {
		if budget[e.key()] > 0 {
			left := e
			left.Count = budget[e.key()]
			budget[e.key()] = 0 // report a key once even if listed twice
			stale = append(stale, left)
		}
	}
	return remaining, stale
}

// baselineFile canonicalizes a diagnostic's file path for keying:
// module-root-relative, slash-separated.
func baselineFile(root, file string) string {
	if root != "" && filepath.IsAbs(file) {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}
