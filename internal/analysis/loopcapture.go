package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LoopCapture flags goroutine literals that reference their enclosing
// loop's iteration variables instead of receiving them as arguments (the
// fan-out idiom of sim/engine.go and campaign/campaign.go). Even with Go
// 1.22's per-iteration loop variables this couples the goroutine to the
// loop's scoping rules; the worker-pool code passes values explicitly so
// the data flow into each worker stays visible.
var LoopCapture = &Analyzer{
	Name: "loopcapture",
	Doc:  "flags goroutine literals capturing loop variables",
	Run:  runLoopCapture,
}

func runLoopCapture(pass *Pass) {
	reported := map[token.Pos]bool{}
	pass.Inspect(func(n ast.Node) bool {
		var body *ast.BlockStmt
		loopVars := map[types.Object]bool{}
		collect := func(e ast.Expr) {
			id, ok := e.(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			if obj := pass.Pkg.Info.Defs[id]; obj != nil {
				loopVars[obj] = true
			} else if obj := pass.Pkg.Info.Uses[id]; obj != nil {
				loopVars[obj] = true // "for k = range" over a pre-declared var
			}
		}
		switch st := n.(type) {
		case *ast.RangeStmt:
			if st.Key != nil {
				collect(st.Key)
			}
			if st.Value != nil {
				collect(st.Value)
			}
			body = st.Body
		case *ast.ForStmt:
			if init, ok := st.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					collect(lhs)
				}
			}
			body = st.Body
		default:
			return true
		}
		if len(loopVars) == 0 {
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			gs, ok := m.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			// Arguments of the spawn call evaluate in the loop and are
			// fine; only references from inside the literal body escape
			// the iteration.
			ast.Inspect(lit.Body, func(k ast.Node) bool {
				id, ok := k.(*ast.Ident)
				if !ok {
					return true
				}
				if obj := pass.Pkg.Info.Uses[id]; obj != nil && loopVars[obj] && !reported[id.Pos()] {
					reported[id.Pos()] = true
					pass.Reportf(id.Pos(), "goroutine captures loop variable %s; pass it as an argument", id.Name)
				}
				return true
			})
			return true
		})
		return true
	})
}
