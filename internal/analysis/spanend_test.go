package analysis

import "testing"

func TestSpanEnd(t *testing.T) { testFixture(t, SpanEnd, "spanend") }

func TestSpanEndRegistered(t *testing.T) {
	for _, a := range All() {
		if a == SpanEnd {
			return
		}
	}
	t.Fatal("spanend is not in the default analyzer set")
}
