package analysis

import "testing"

func TestHotAlloc(t *testing.T) { testFixture(t, HotAlloc, "hotalloc") }
