package analysis

import "strings"

// ignorePrefix is the suppression directive. Usage, always with a reason:
//
//	risky() //scalvet:ignore the exact compare is the sentinel test
//
// or on its own line immediately above the flagged one.
const ignorePrefix = "//scalvet:ignore"

type ignoreSet struct {
	// lines maps file → set of lines carrying a valid ignore directive.
	lines map[string]map[int]bool
	// malformed reports directives missing the mandatory reason.
	malformed []Diagnostic
}

func collectIgnores(pkg *Package) *ignoreSet {
	ig := &ignoreSet{lines: map[string]map[int]bool{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				pos := pkg.Fset.Position(c.Pos())
				if reason == "" {
					ig.malformed = append(ig.malformed, Diagnostic{
						Analyzer: "ignore",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  `scalvet:ignore needs a reason ("//scalvet:ignore why this is safe"); nothing suppressed`,
					})
					continue
				}
				m := ig.lines[pos.Filename]
				if m == nil {
					m = map[int]bool{}
					ig.lines[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return ig
}

// suppressed reports whether a diagnostic at file:line is covered by an
// ignore directive on the same line or the line directly above.
func (ig *ignoreSet) suppressed(file string, line int) bool {
	m := ig.lines[file]
	return m != nil && (m[line] || m[line-1])
}
