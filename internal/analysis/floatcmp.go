package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point expressions in the model
// core. Epsilon-free CPI comparisons are how Eq. 1/8 silently diverge: two
// mathematically equal curve values differ in the last ulp and an exact
// compare branches the wrong way without any visible failure. Comparing
// two compile-time constants folds exactly and is not flagged.
var FloatCmp = NewFloatCmp("internal/model", "internal/stats", "internal/experiments")

// NewFloatCmp builds a floatcmp instance restricted to packages whose
// import path ends in one of pathSuffixes (none = all packages).
func NewFloatCmp(pathSuffixes ...string) *Analyzer {
	return &Analyzer{
		Name:         "floatcmp",
		Doc:          "flags ==/!= comparisons between floating-point expressions",
		PathSuffixes: pathSuffixes,
		Run:          runFloatCmp,
	}
}

func runFloatCmp(pass *Pass) {
	pass.Inspect(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if !isFloat(pass.TypeOf(be.X)) && !isFloat(pass.TypeOf(be.Y)) {
			return true
		}
		if pass.Pkg.Info.Types[be.X].Value != nil && pass.Pkg.Info.Types[be.Y].Value != nil {
			return true // both constant: folds exactly
		}
		pass.Reportf(be.OpPos, "exact floating-point %s comparison; use a tolerance or restructure the test", be.Op)
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
