package analysis

// Fixture-driven test harness: each analyzer fixture under testdata/src
// annotates the lines it expects diagnostics on with
//
//	flagged() // want "message substring"
//
// (several quoted substrings may follow one want). The harness loads the
// fixture standalone, runs the analyzer with //scalvet:ignore filtering
// active, and requires an exact match between expected and produced
// diagnostics.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file   string
	line   int
	substr string
}

// collectWants extracts the // want annotations of a loaded fixture.
func collectWants(t *testing.T, pkg *Package) []expectation {
	t.Helper()
	var wants []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(strings.TrimSuffix(text, "*/"), "/*")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(text, -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, text)
				}
				for _, m := range matches {
					s, err := strconv.Unquote(`"` + m[1] + `"`)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, expectation{file: pos.Filename, line: pos.Line, substr: s})
				}
			}
		}
	}
	return wants
}

// testFixture checks one analyzer against one fixture directory.
func testFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	got := RunUnfiltered(pkg, []*Analyzer{a})
	wants := collectWants(t, pkg)

	unmatched := append([]Diagnostic(nil), got...)
	for _, w := range wants {
		found := false
		for i, d := range unmatched {
			if d.File == w.file && d.Line == w.line && strings.Contains(d.Message, w.substr) {
				unmatched = append(unmatched[:i], unmatched[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic containing %q; got:\n%s", w.file, w.line, w.substr, diagList(got))
		}
	}
	for _, d := range unmatched {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

func diagList(ds []Diagnostic) string {
	if len(ds) == 0 {
		return "  (none)"
	}
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
