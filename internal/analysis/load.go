package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadModule loads and type-checks the packages of the module rooted at
// root that match patterns ("./...", "dir/...", or plain directories,
// interpreted relative to root). It uses only the standard library:
// module-local imports resolve from the module tree itself and
// standard-library imports from GOROOT source via go/importer. Test files
// are not loaded.
func LoadModule(root string, patterns []string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	ld := newLoader(root, modPath)
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := ld.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads a single directory as a standalone package whose imports
// must all be from the standard library — the fixture loader for analyzer
// tests.
func LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	p, err := newLoader(dir, "").loadDir(dir)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return p, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w (scalvet must run inside the module)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// expandPatterns resolves package patterns to candidate directories.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	walk := func(base string) error {
		return filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		switch {
		case pat == "..." || pat == "":
			if err := walk(root); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			if err := walk(filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))); err != nil {
				return nil, err
			}
		default:
			add(filepath.Join(root, filepath.FromSlash(pat)))
		}
	}
	return out, nil
}

// loader type-checks module packages, memoized by directory. It is the
// types.Importer for module-local paths and delegates everything else to
// the standard library's source importer.
type loader struct {
	root    string
	modPath string
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // by absolute dir; nil = no Go files
	loading map[string]bool
}

func newLoader(root, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:    root,
		modPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer over the loader's module.
func (ld *loader) Import(path string) (*types.Package, error) {
	if ld.modPath != "" && (path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, ld.modPath), "/")
		p, err := ld.loadDir(filepath.Join(ld.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("analysis: no Go files for import %q", path)
		}
		return p.Types, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) importPathFor(dir string) string {
	if ld.modPath == "" {
		return filepath.Base(dir)
	}
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil || rel == "." {
		return ld.modPath
	}
	return ld.modPath + "/" + filepath.ToSlash(rel)
}

// loadDir parses and type-checks one directory. It returns (nil, nil) when
// the directory holds no non-test Go files.
func (ld *loader) loadDir(dir string) (*Package, error) {
	dir = filepath.Clean(dir)
	if p, ok := ld.pkgs[dir]; ok {
		return p, nil
	}
	if ld.loading[dir] {
		return nil, fmt.Errorf("analysis: import cycle through %s", dir)
	}
	ld.loading[dir] = true
	defer delete(ld.loading, dir)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		ld.pkgs[dir] = nil
		return nil, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: ld}
	importPath := ld.importPathFor(dir)
	tpkg, err := conf.Check(importPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	p := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  ld.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	ld.pkgs[dir] = p
	return p, nil
}
