package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ModuleSet is the result of loading a module: the packages that matched
// the requested patterns (what analyzers report on) and every module-local
// package that got loaded to satisfy them (what program facts — the call
// graph, hot reachability — are computed over, so reachability does not
// stop at the pattern boundary).
type ModuleSet struct {
	Requested []*Package
	All       []*Package
}

// LoadModule loads and type-checks the packages of the module rooted at
// root that match patterns ("./...", "dir/...", or plain directories,
// interpreted relative to root). It uses only the standard library:
// module-local imports resolve from the module tree itself and
// standard-library imports from GOROOT source via go/importer. Test files
// are not loaded.
//
// Loading is parallel: all files parse concurrently, then packages
// type-check concurrently in dependency order on a bounded pool (stdlib
// imports serialize on the shared source importer). The produced
// diagnostics are byte-identical to LoadModuleSerial's — positions are
// per-file and the analysis order is fixed by the sorted package list —
// which TestParallelLoadMatchesSerial locks in.
func LoadModule(root string, patterns []string) (*ModuleSet, error) {
	return loadModuleParallel(root, patterns, runtime.GOMAXPROCS(0))
}

// LoadModuleSerial is the single-goroutine reference implementation of
// LoadModule.
func LoadModuleSerial(root string, patterns []string) (*ModuleSet, error) {
	root, modPath, dirs, err := resolvePatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	ld := newLoader(root, modPath)
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := ld.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	sortPackages(pkgs)
	all := make([]*Package, 0, len(ld.pkgs))
	for _, p := range ld.pkgs {
		if p != nil {
			all = append(all, p)
		}
	}
	sortPackages(all)
	return &ModuleSet{Requested: pkgs, All: all}, nil
}

// LoadDir loads a single directory as a standalone package whose imports
// must all be from the standard library — the fixture loader for analyzer
// tests.
func LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	p, err := newLoader(dir, "").loadDir(dir)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return p, nil
}

func resolvePatterns(root string, patterns []string) (absRoot, modPath string, dirs []string, err error) {
	absRoot, err = filepath.Abs(root)
	if err != nil {
		return "", "", nil, err
	}
	modPath, err = modulePath(filepath.Join(absRoot, "go.mod"))
	if err != nil {
		return "", "", nil, err
	}
	dirs, err = expandPatterns(absRoot, patterns)
	if err != nil {
		return "", "", nil, err
	}
	return absRoot, modPath, dirs, nil
}

func sortPackages(pkgs []*Package) {
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w (scalvet must run inside the module)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// expandPatterns resolves package patterns to candidate directories.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	walk := func(base string) error {
		return filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		switch {
		case pat == "..." || pat == "":
			if err := walk(root); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			if err := walk(filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))); err != nil {
				return nil, err
			}
		default:
			add(filepath.Join(root, filepath.FromSlash(pat)))
		}
	}
	return out, nil
}

// loader type-checks module packages, memoized by directory. It is the
// types.Importer for module-local paths and delegates everything else to
// the standard library's source importer. This is the serial engine; the
// parallel path below reuses its directory parsing and naming helpers.
type loader struct {
	root    string
	modPath string
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // by absolute dir; nil = no Go files
	loading map[string]bool
}

func newLoader(root, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:    root,
		modPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer over the loader's module.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir, ok := moduleLocalDir(ld.root, ld.modPath, path); ok {
		p, err := ld.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("analysis: no Go files for import %q", path)
		}
		return p.Types, nil
	}
	return ld.std.Import(path)
}

// moduleLocalDir maps an import path inside the module to its directory.
func moduleLocalDir(root, modPath, path string) (string, bool) {
	if modPath == "" || (path != modPath && !strings.HasPrefix(path, modPath+"/")) {
		return "", false
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, modPath), "/")
	return filepath.Join(root, filepath.FromSlash(rel)), true
}

func importPathFor(root, modPath, dir string) string {
	if modPath == "" {
		return filepath.Base(dir)
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

// parseDir parses the non-test Go files of one directory into fset.
// A directory with no Go files yields (nil, nil).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// loadDir parses and type-checks one directory. It returns (nil, nil) when
// the directory holds no non-test Go files.
func (ld *loader) loadDir(dir string) (*Package, error) {
	dir = filepath.Clean(dir)
	if p, ok := ld.pkgs[dir]; ok {
		return p, nil
	}
	if ld.loading[dir] {
		return nil, fmt.Errorf("analysis: import cycle through %s", dir)
	}
	ld.loading[dir] = true
	defer delete(ld.loading, dir)

	files, err := parseDir(ld.fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		ld.pkgs[dir] = nil
		return nil, nil
	}

	info := newTypesInfo()
	conf := types.Config{Importer: ld}
	importPath := importPathFor(ld.root, ld.modPath, dir)
	tpkg, err := conf.Check(importPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	p := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  ld.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	ld.pkgs[dir] = p
	return p, nil
}

// ---- parallel loading ----------------------------------------------------

// parsedDir is the parse-phase output for one directory.
type parsedDir struct {
	dir   string
	files []*ast.File
	deps  []string // module-local import directories
}

// loadModuleParallel is the concurrent engine behind LoadModule: a parallel
// parse phase that transitively closes over module-local imports, then a
// dependency-ordered type-check phase on a bounded worker pool. Standard-
// library imports go through one mutex-guarded source importer (it is not
// concurrency-safe); module-local imports read the already-completed result
// map, which the dependency order guarantees is populated.
func loadModuleParallel(root string, patterns []string, workers int) (*ModuleSet, error) {
	if workers < 1 {
		workers = 1
	}
	root, modPath, dirs, err := resolvePatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	parsed, err := parseClosure(fset, root, modPath, dirs, workers)
	if err != nil {
		return nil, err
	}

	all, byDir, err := checkParallel(fset, root, modPath, parsed, workers)
	if err != nil {
		return nil, err
	}

	var requested []*Package
	for _, dir := range dirs {
		if p := byDir[filepath.Clean(dir)]; p != nil {
			requested = append(requested, p)
		}
	}
	sortPackages(requested)
	sortPackages(all)
	return &ModuleSet{Requested: requested, All: all}, nil
}

// parseClosure parses the requested directories and, transitively, every
// module-local directory they import. Parsing within a wave is parallel;
// the fset is internally synchronized.
func parseClosure(fset *token.FileSet, root, modPath string, dirs []string, workers int) (map[string]*parsedDir, error) {
	parsed := map[string]*parsedDir{}
	pending := make([]string, 0, len(dirs))
	queued := map[string]bool{}
	enqueue := func(dir string) {
		dir = filepath.Clean(dir)
		if !queued[dir] {
			queued[dir] = true
			pending = append(pending, dir)
		}
	}
	for _, d := range dirs {
		enqueue(d)
	}
	for len(pending) > 0 {
		wave := pending
		pending = nil
		sort.Strings(wave)

		results := make([]*parsedDir, len(wave))
		errs := make([]error, len(wave))
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, dir := range wave {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, dir string) {
				defer wg.Done()
				defer func() { <-sem }()
				files, err := parseDir(fset, dir)
				if err != nil {
					errs[i] = err
					return
				}
				results[i] = &parsedDir{dir: dir, files: files}
			}(i, dir)
		}
		wg.Wait()
		for i := range wave {
			if errs[i] != nil {
				return nil, errs[i] // deterministic: first error in sorted wave order
			}
		}
		for _, pd := range results {
			parsed[pd.dir] = pd
			if len(pd.files) == 0 {
				continue
			}
			for _, f := range pd.files {
				for _, imp := range f.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if depDir, ok := moduleLocalDir(root, modPath, path); ok {
						pd.deps = append(pd.deps, filepath.Clean(depDir))
						enqueue(depDir)
					}
				}
			}
		}
	}
	return parsed, nil
}

// parImporter is the types.Importer of the parallel phase.
type parImporter struct {
	root, modPath string

	mu   sync.RWMutex
	done map[string]*Package // by dir; nil = no Go files

	stdMu sync.Mutex
	std   types.Importer
}

func (pi *parImporter) Import(path string) (*types.Package, error) {
	if dir, ok := moduleLocalDir(pi.root, pi.modPath, path); ok {
		pi.mu.RLock()
		p, found := pi.done[filepath.Clean(dir)]
		pi.mu.RUnlock()
		if !found {
			return nil, fmt.Errorf("analysis: import %q outside the parsed module closure", path)
		}
		if p == nil {
			return nil, fmt.Errorf("analysis: no Go files for import %q", path)
		}
		return p.Types, nil
	}
	pi.stdMu.Lock()
	defer pi.stdMu.Unlock()
	return pi.std.Import(path)
}

func (pi *parImporter) complete(dir string, p *Package) {
	pi.mu.Lock()
	pi.done[dir] = p
	pi.mu.Unlock()
}

// checkParallel type-checks the parsed closure in dependency order with a
// bounded pool. A package is scheduled only when all of its module-local
// imports completed, so Import never blocks.
func checkParallel(fset *token.FileSet, root, modPath string, parsed map[string]*parsedDir, workers int) ([]*Package, map[string]*Package, error) {
	pi := &parImporter{
		root:    root,
		modPath: modPath,
		done:    map[string]*Package{},
		std:     importer.ForCompiler(fset, "source", nil),
	}

	indeg := map[string]int{}
	dependents := map[string][]string{}
	for dir, pd := range parsed {
		deps := map[string]bool{}
		for _, d := range pd.deps {
			if _, ok := parsed[d]; ok && d != dir && !deps[d] {
				deps[d] = true
				indeg[dir]++
				dependents[d] = append(dependents[d], dir)
			}
		}
		if _, ok := indeg[dir]; !ok {
			indeg[dir] = 0
		}
	}
	if cycleDir := findCycle(indeg, dependents); cycleDir != "" {
		return nil, nil, fmt.Errorf("analysis: import cycle through %s", cycleDir)
	}

	ready := make(chan string, len(parsed))
	for dir, n := range indeg {
		if n == 0 {
			ready <- dir
		}
	}

	var (
		mu        sync.Mutex
		completed int
		errsByDir = map[string]error{}
		wg        sync.WaitGroup
	)
	finish := func(dir string, p *Package, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			errsByDir[dir] = err
		}
		pi.complete(dir, p)
		completed++
		for _, dep := range dependents[dir] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready <- dep
			}
		}
		if completed == len(parsed) {
			close(ready)
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for dir := range ready {
				pd := parsed[dir]
				if len(pd.files) == 0 {
					finish(dir, nil, nil)
					continue
				}
				info := newTypesInfo()
				conf := types.Config{Importer: pi}
				importPath := importPathFor(root, modPath, dir)
				tpkg, err := conf.Check(importPath, fset, pd.files, info)
				if err != nil {
					finish(dir, nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err))
					continue
				}
				finish(dir, &Package{
					Path:  importPath,
					Dir:   dir,
					Fset:  fset,
					Files: pd.files,
					Types: tpkg,
					Info:  info,
				}, nil)
			}
		}()
	}
	wg.Wait()

	if len(errsByDir) > 0 {
		dirs := make([]string, 0, len(errsByDir))
		for d := range errsByDir {
			dirs = append(dirs, d)
		}
		sort.Strings(dirs)
		return nil, nil, errsByDir[dirs[0]]
	}
	var all []*Package
	byDir := map[string]*Package{}
	for dir, p := range pi.done {
		byDir[dir] = p
		if p != nil {
			all = append(all, p)
		}
	}
	return all, byDir, nil
}

// findCycle runs Kahn's algorithm on a copy of the in-degrees; any node it
// cannot drain sits on an import cycle (invalid Go, but the scheduler must
// fail instead of deadlocking on it). Returns the lexically first such
// directory, or "".
func findCycle(indeg map[string]int, dependents map[string][]string) string {
	left := make(map[string]int, len(indeg))
	var queue []string
	for d, n := range indeg {
		left[d] = n
		if n == 0 {
			queue = append(queue, d)
		}
	}
	drained := 0
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		drained++
		for _, dep := range dependents[d] {
			left[dep]--
			if left[dep] == 0 {
				queue = append(queue, dep)
			}
		}
	}
	if drained == len(indeg) {
		return ""
	}
	var stuck []string
	for d, n := range left {
		if n > 0 {
			stuck = append(stuck, d)
		}
	}
	sort.Strings(stuck)
	return stuck[0]
}
