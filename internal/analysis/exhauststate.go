package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ExhaustState flags switch statements over the coherence-state and
// placement-policy enums that neither cover every declared constant nor
// have a default clause. Adding a protocol state (MSI's missing Exclusive,
// an Owned state, a new placement policy) must not leave a switch silently
// falling through: that is how a new state corrupts miss classification
// without a single failing test.
var ExhaustState = NewExhaustState("cache.State", "cache.MissKind", "memdsm.Placement")

// NewExhaustState builds an exhauststate instance checking switches over
// the given "pkgname.TypeName" enum types.
func NewExhaustState(enumTypes ...string) *Analyzer {
	set := map[string]bool{}
	for _, t := range enumTypes {
		set[t] = true
	}
	a := &Analyzer{
		Name: "exhauststate",
		Doc:  "flags non-exhaustive switches over coherence/placement enums",
	}
	a.Run = func(pass *Pass) {
		pass.Inspect(func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkExhaustive(pass, sw, set)
			return true
		})
	}
	return a
}

func checkExhaustive(pass *Pass, sw *ast.SwitchStmt, enumTypes map[string]bool) {
	tagType := pass.TypeOf(sw.Tag)
	if !namedIn(tagType, enumTypes) {
		return
	}
	named := tagType.(*types.Named)
	members := enumMembers(named)
	if len(members) < 2 {
		return
	}
	covered := map[types.Object]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // a default clause handles future members
		}
		for _, e := range cc.List {
			if obj := constObjOf(pass, e); obj != nil {
				covered[obj] = true
			}
		}
	}
	var missing []string
	for _, m := range members {
		if !covered[m] {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Switch, "switch on %s misses %s and has no default clause",
			named.Obj().Name(), strings.Join(missing, ", "))
	}
}

// enumMembers returns the constants of the named type declared in its
// defining package, in scope (alphabetical) order.
func enumMembers(named *types.Named) []*types.Const {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	scope := pkg.Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	return out
}

// constObjOf resolves a case expression to the constant object it names.
func constObjOf(pass *Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	if c, ok := pass.Pkg.Info.Uses[id].(*types.Const); ok {
		return c
	}
	return nil
}
