package analysis

import (
	"go/ast"
	"go/types"
)

// CloseCheck flags discarded (*os.File).Close and Sync error returns on
// write paths. On POSIX filesystems a write error can surface only at
// close/fsync time (delayed allocation, NFS, full disks): a campaign that
// ignores those errors persists a truncated report or journal segment and
// calls it saved — the exact corruption the tolerant loaders then have to
// quarantine. A file is on a write path when it was opened in this package
// by os.Create, os.OpenFile, or os.CreateTemp; read-only files (os.Open)
// are exempt, since their close error loses no data.
//
// Flagged forms: a bare `f.Close()` / `f.Sync()` expression statement and
// `defer f.Close()` / `defer f.Sync()`. Checking the error, returning it,
// or explicitly discarding it with `_ =` (a visible, deliberate choice on
// an error path) all satisfy the check.
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc:  "flags unchecked (*os.File).Close/Sync errors on write paths",
	Run:  runCloseCheck,
}

func runCloseCheck(pass *Pass) {
	// First pass: every variable in the package assigned from a
	// write-capable os open. Objects are package-global in types.Info, so a
	// deferred closure closing its enclosing function's file resolves to
	// the same object.
	writeFiles := map[types.Object]bool{}
	pass.Inspect(func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isWriteOpen(pass, call) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := pass.Pkg.Info.ObjectOf(id); obj != nil {
				writeFiles[obj] = true
			}
		}
		return true
	})
	if len(writeFiles) == 0 {
		return
	}

	// Second pass: bare and deferred Close/Sync calls on those files. Both
	// forms drop the error on the floor; everything else (if-statements,
	// returns, `_ =`) keeps it visible.
	pass.Inspect(func(n ast.Node) bool {
		var call *ast.CallExpr
		switch st := n.(type) {
		case *ast.ExprStmt:
			call, _ = st.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = st.Call
		default:
			return true
		}
		if call == nil {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Sync") {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || !writeFiles[pass.Pkg.Info.ObjectOf(id)] {
			return true
		}
		pass.Reportf(call.Pos(),
			"unchecked (*os.File).%s error on a write path; a delayed write error is lost — check it, return it, or discard it explicitly with _ =",
			sel.Sel.Name)
		return true
	})
}

// isWriteOpen reports whether call is os.Create, os.OpenFile, or
// os.CreateTemp.
func isWriteOpen(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	switch fn.Name() {
	case "Create", "OpenFile", "CreateTemp":
		return true
	}
	return false
}
