package analysis

import "testing"

func TestCounterConvFixture(t *testing.T) {
	a := NewCounterConv(
		[]string{"counterconv.Set", "counterconv.Report"},
		[]string{"ratio"},
	)
	testFixture(t, a, "counterconv")
}

func TestCounterConvDefaultConfig(t *testing.T) {
	// The production instance must track the real counter types and
	// allow the sanctioned conversion helpers.
	if CounterConv.Name != "counterconv" {
		t.Fatalf("name = %q", CounterConv.Name)
	}
	if len(CounterConv.PathSuffixes) != 0 {
		t.Error("counterconv must scan every package")
	}
}
