// Package analysis implements scalvet, the repo-specific static-analysis
// pass for the Scal-Tool model core. It is built only on the standard
// library (go/ast, go/parser, go/token, go/types): the module stays
// dependency-free.
//
// Scal-Tool's value is a trustworthy decomposition of cycles into
// Base/L2Lim/Sync/Imb. A single silent float bug, counter overflow, or
// data race in the campaign/sim worker pools corrupts every downstream
// figure, so this package machine-checks the invariants the code
// previously only asserted via scattered panics:
//
//   - floatcmp:     ==/!= between floating-point expressions
//   - counterconv:  lossy uint64→float64/int conversions of counter fields
//   - loopcapture:  goroutine literals capturing loop variables
//   - sharedmut:    goroutine literals writing shared state unguarded
//   - panicmsg:     the "pkg: message" panic/assert message convention
//   - exhauststate: non-exhaustive switches over coherence/placement enums
//   - ctxgo:        campaign/sim goroutines launched without a context
//   - spanend:      StartSpan spans with no deferred or per-return-path End
//   - closecheck:   discarded (*os.File).Close/Sync errors on write paths
//
// scalvet v2 adds a whole-program layer (facts.go): a conservative
// cross-package call graph, hot-path reachability from sim.Run/RunContext,
// HTTP-handler-shaped functions and //scalvet:hot annotations, and a small
// intraprocedural escape lattice (escape.go). On top of it:
//
//   - hotalloc:     allocations, append-without-preallocation, boxing and
//     fmt use inside hot-reachable functions
//   - deferloop:    defer or span-start inside loops of hot functions
//   - atomicmix:    fields accessed both via sync/atomic and plainly
//   - mutexcopy:    sync types copied by value (embedding included)
//   - ctxhttp:      serve handlers spawning work without r.Context()
//
// Pre-existing findings are tracked, not silenced, by the committed
// baseline (baseline.go, scalvet.baseline.json) keyed by
// analyzer+file+symbol so line churn does not invalidate entries.
//
// A diagnostic on a given line is suppressed by a trailing
// "//scalvet:ignore reason" comment on the same line or by one on its own
// line immediately above. The reason is mandatory: a bare ignore is itself
// reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at file:line:col. Symbol names the
// enclosing top-level declaration — the stable half of the baseline key, so
// unrelated line churn in a file does not invalidate tracked debt.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Symbol   string `json:"symbol,omitempty"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("scaltool/internal/sim")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one scalvet check.
type Analyzer struct {
	Name string
	Doc  string
	// PathSuffixes, when non-empty, restricts the analyzer to packages
	// whose import path ends in one of the suffixes.
	PathSuffixes []string
	Run          func(*Pass)
}

func (a *Analyzer) appliesTo(pkgPath string) bool {
	if len(a.PathSuffixes) == 0 {
		return true
	}
	for _, suf := range a.PathSuffixes {
		if pkgPath == suf || strings.HasSuffix(pkgPath, "/"+suf) {
			return true
		}
	}
	return false
}

// All returns the full analyzer set in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp, CounterConv, LoopCapture, SharedMut, PanicMsg, ExhaustState,
		CtxGo, SpanEnd, CloseCheck,
		HotAlloc, DeferLoop, AtomicMix, MutexCopy, CtxHTTP,
	}
}

// Pass carries one analyzer's run over one package. Facts exposes the
// whole-program layer (call graph, hot-path reachability, atomic census,
// escape lattices) computed once over every loaded package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Facts    *Facts
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos, attributing it to the enclosing
// top-level declaration.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Symbol:   p.symbolAt(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// symbolAt names the top-level declaration covering pos: "F", "T.M" for
// methods (pointer receivers included, without the star), or the first
// declared name of a var/const/type block.
func (p *Pass) symbolAt(pos token.Pos) string {
	for _, f := range p.Pkg.Files {
		if pos < f.FileStart || pos > f.FileEnd {
			continue
		}
		for _, d := range f.Decls {
			if pos < d.Pos() || pos > d.End() {
				continue
			}
			switch dd := d.(type) {
			case *ast.FuncDecl:
				return funcDeclSymbol(dd)
			case *ast.GenDecl:
				for _, spec := range dd.Specs {
					switch sp := spec.(type) {
					case *ast.ValueSpec:
						if len(sp.Names) > 0 {
							return sp.Names[0].Name
						}
					case *ast.TypeSpec:
						return sp.Name.Name
					}
				}
			}
		}
		return ""
	}
	return ""
}

// funcDeclSymbol renders a declaration's baseline symbol: "F" or "T.M".
func funcDeclSymbol(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.Ident:
			return x.Name + "." + d.Name.Name
		default:
			return d.Name.Name
		}
	}
}

// TypeOf returns the type of an expression (nil if untypeable).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Inspect walks every file of the package.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// Run applies the analyzers (respecting their package filters) to the
// module set's requested packages, drops //scalvet:ignore'd findings, and
// returns the remainder sorted by position. Program facts (call graph, hot
// reachability, atomic census) are computed over every loaded package —
// imports included — so reachability does not stop at the pattern boundary.
func Run(ms *ModuleSet, analyzers []*Analyzer) []Diagnostic {
	facts := buildFacts(ms.All)
	var all []Diagnostic
	for _, pkg := range ms.Requested {
		all = append(all, runPackage(pkg, facts, analyzers, true)...)
	}
	sortDiags(all)
	return all
}

// RunUnfiltered runs the analyzers over one package ignoring their package
// filters (fixture tests use it); //scalvet:ignore suppression still
// applies, and facts are computed from the package alone.
func RunUnfiltered(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags := runPackage(pkg, buildFacts([]*Package{pkg}), analyzers, false)
	sortDiags(diags)
	return diags
}

func runPackage(pkg *Package, facts *Facts, analyzers []*Analyzer, applyPathFilter bool) []Diagnostic {
	ig := collectIgnores(pkg)
	out := append([]Diagnostic(nil), ig.malformed...)
	for _, a := range analyzers {
		if applyPathFilter && !a.appliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{Analyzer: a, Pkg: pkg, Facts: facts}
		a.Run(pass)
		for _, d := range pass.diags {
			if ig.suppressed(d.File, d.Line) {
				continue
			}
			out = append(out, d)
		}
	}
	return out
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}
