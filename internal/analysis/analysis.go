// Package analysis implements scalvet, the repo-specific static-analysis
// pass for the Scal-Tool model core. It is built only on the standard
// library (go/ast, go/parser, go/token, go/types): the module stays
// dependency-free.
//
// Scal-Tool's value is a trustworthy decomposition of cycles into
// Base/L2Lim/Sync/Imb. A single silent float bug, counter overflow, or
// data race in the campaign/sim worker pools corrupts every downstream
// figure, so this package machine-checks the invariants the code
// previously only asserted via scattered panics:
//
//   - floatcmp:     ==/!= between floating-point expressions
//   - counterconv:  lossy uint64→float64/int conversions of counter fields
//   - loopcapture:  goroutine literals capturing loop variables
//   - sharedmut:    goroutine literals writing shared state unguarded
//   - panicmsg:     the "pkg: message" panic/assert message convention
//   - exhauststate: non-exhaustive switches over coherence/placement enums
//   - ctxgo:        campaign/sim goroutines launched without a context
//   - spanend:      StartSpan spans with no deferred or per-return-path End
//   - closecheck:   discarded (*os.File).Close/Sync errors on write paths
//
// A diagnostic on a given line is suppressed by a trailing
// "//scalvet:ignore reason" comment on the same line or by one on its own
// line immediately above. The reason is mandatory: a bare ignore is itself
// reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at file:line:col.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("scaltool/internal/sim")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one scalvet check.
type Analyzer struct {
	Name string
	Doc  string
	// PathSuffixes, when non-empty, restricts the analyzer to packages
	// whose import path ends in one of the suffixes.
	PathSuffixes []string
	Run          func(*Pass)
}

func (a *Analyzer) appliesTo(pkgPath string) bool {
	if len(a.PathSuffixes) == 0 {
		return true
	}
	for _, suf := range a.PathSuffixes {
		if pkgPath == suf || strings.HasSuffix(pkgPath, "/"+suf) {
			return true
		}
	}
	return false
}

// All returns the full analyzer set in stable order.
func All() []*Analyzer {
	return []*Analyzer{FloatCmp, CounterConv, LoopCapture, SharedMut, PanicMsg, ExhaustState, CtxGo, SpanEnd, CloseCheck}
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression (nil if untypeable).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Inspect walks every file of the package.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// Run applies the analyzers (respecting their package filters) to the
// packages, drops //scalvet:ignore'd findings, and returns the remainder
// sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		all = append(all, runPackage(pkg, analyzers, true)...)
	}
	sortDiags(all)
	return all
}

// RunUnfiltered runs the analyzers over one package ignoring their package
// filters (fixture tests use it); //scalvet:ignore suppression still
// applies.
func RunUnfiltered(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags := runPackage(pkg, analyzers, false)
	sortDiags(diags)
	return diags
}

func runPackage(pkg *Package, analyzers []*Analyzer, applyPathFilter bool) []Diagnostic {
	ig := collectIgnores(pkg)
	out := append([]Diagnostic(nil), ig.malformed...)
	for _, a := range analyzers {
		if applyPathFilter && !a.appliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{Analyzer: a, Pkg: pkg}
		a.Run(pass)
		for _, d := range pass.diags {
			if ig.suppressed(d.File, d.Line) {
				continue
			}
			out = append(out, d)
		}
	}
	return out
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}
