package analysis

import "go/ast"

// inspectWithStack walks root in source order, passing each node together
// with its ancestor stack (outermost first, the node itself excluded).
// Returning false prunes the subtree, as with ast.Inspect.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// loopsEnclosing counts the for/range statements between a node (whose
// ancestor stack is given) and the nearest enclosing function boundary,
// counting a loop only when the node sits in its per-iteration region: a
// range expression and a for's init run once, so `range append(base, xs…)`
// is not a per-iteration allocation. stopAtFuncLit controls whether a
// function literal resets the count — defer semantics reset at literals
// (each call runs its own defers), while per-iteration cost accounting
// does not.
func loopsEnclosing(stack []ast.Node, stopAtFuncLit bool) int {
	loops := 0
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.ForStmt:
			if child(stack, i) != s.Init {
				loops++
			}
		case *ast.RangeStmt:
			if child(stack, i) == s.Body {
				loops++
			}
		case *ast.FuncLit:
			if stopAtFuncLit {
				return loops
			}
		case *ast.FuncDecl:
			return loops
		}
	}
	return loops
}

// child returns the stack entry one step inside stack[i] (nil when stack[i]
// is the innermost ancestor — the callback node itself is then the child,
// which callers treat as per-iteration conservatively).
func child(stack []ast.Node, i int) ast.Node {
	if i+1 < len(stack) {
		return stack[i+1]
	}
	return nil
}
