package analysis

import "testing"

func TestMutexCopy(t *testing.T) { testFixture(t, MutexCopy, "mutexcopy") }
