package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
	"unicode"
)

// PanicMsg enforces the repo's "pkg: message" panic-prefix convention
// (as established in cache, memdsm, network, stats): a panic whose message
// can be determined statically must start with the enclosing package's
// name and ": ". The same rule applies to the message arguments of the
// internal/assert helpers (assert.True, assert.Failf, assert.Unreachable),
// which exist precisely to produce that format. Non-constant messages
// (panic(err) and friends) are skipped.
//
// In package main any leading "word: " tag is accepted, since commands
// prefix with their own name.
var PanicMsg = &Analyzer{
	Name: "panicmsg",
	Doc:  `enforces the "pkg: message" panic/assert message convention`,
	Run:  runPanicMsg,
}

func runPanicMsg(pass *Pass) {
	pkgName := pass.Pkg.Types.Name()
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		msgArg := panicMessageArg(pass, call)
		if msgArg == nil {
			return true
		}
		msg, ok := literalPrefix(pass, msgArg)
		if !ok {
			return true // dynamic message: cannot check statically
		}
		if !hasPkgPrefix(msg, pkgName) {
			pass.Reportf(msgArg.Pos(), "panic message %q does not start with %q (repo convention is \"pkg: message\")", clip(msg), pkgName+": ")
		}
		return true
	})
}

// panicMessageArg returns the message expression of a builtin panic(...)
// or an internal/assert helper call, or nil.
func panicMessageArg(pass *Pass, call *ast.CallExpr) ast.Expr {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if fn.Name != "panic" || len(call.Args) != 1 {
			return nil
		}
		if _, ok := pass.Pkg.Info.Uses[fn].(*types.Builtin); !ok {
			return nil
		}
		return call.Args[0]
	case *ast.SelectorExpr:
		id, ok := fn.X.(*ast.Ident)
		if !ok || id.Name != "assert" {
			return nil
		}
		switch fn.Sel.Name {
		case "True":
			if len(call.Args) >= 2 {
				return call.Args[1]
			}
		case "Failf", "Unreachable":
			if len(call.Args) >= 1 {
				return call.Args[0]
			}
		}
	}
	return nil
}

// literalPrefix extracts the statically known leading string of a message
// expression: a string literal, the left side of a "lit" + expr chain, or
// the format literal of fmt.Sprintf/Sprint/Errorf.
func literalPrefix(pass *Pass, e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if x.Kind.String() != "STRING" {
			return "", false
		}
		s, err := strconv.Unquote(x.Value)
		return s, err == nil
	case *ast.BinaryExpr:
		return literalPrefix(pass, x.X)
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && len(x.Args) > 0 {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" {
				switch sel.Sel.Name {
				case "Sprintf", "Sprint", "Errorf":
					return literalPrefix(pass, x.Args[0])
				}
			}
		}
	}
	return "", false
}

func hasPkgPrefix(msg, pkgName string) bool {
	if pkgName != "main" {
		return strings.HasPrefix(msg, pkgName+": ")
	}
	// Commands tag with their own name: any leading "word: " is fine.
	head, _, ok := strings.Cut(msg, ": ")
	if !ok || head == "" {
		return false
	}
	for _, r := range head {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '-' && r != '_' {
			return false
		}
	}
	return true
}

func clip(s string) string {
	if len(s) > 40 {
		return s[:40] + "…"
	}
	return s
}
