// Package vetbad is a deliberately vet-dirty fixture. The repo's own tree
// is vet-clean (verify.sh runs `go vet ./...`, which skips testdata), so
// this file exists to prove the gate actually fires: vetgate_test.go runs
// `go vet` on this package and requires it to FAIL. If vet ever stops
// flagging it, the gate is broken and the test says so.
package vetbad

import "fmt"

// Describe formats an event count with a wrong printf verb: %d applied to
// a string. This is exactly the class of bug `go vet` exists to catch.
func Describe(name string) string {
	return fmt.Sprintf("event %d", name)
}
