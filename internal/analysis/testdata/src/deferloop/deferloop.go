// Fixture for the deferloop analyzer. Hotness comes from //scalvet:hot.
package deferloop

import "sync"

type span struct{}

func (span) End() {}

type tracer struct{}

// StartSpan mimics obs.StartSpan's shape; the obs-specific rule is
// path-gated and exercised against the real package, not here.
func (tracer) StartSpan(name string) span { return span{} }

var mu sync.Mutex

func body(i int) {}

//scalvet:hot fixture root
func hotDefers(n int) {
	defer mu.Unlock() // function-scoped defer: fine
	mu.Lock()
	for i := 0; i < n; i++ {
		mu.Lock()
		defer mu.Unlock() // want "defer inside a hot loop"
		body(i)
	}
	for i := 0; i < n; i++ {
		// Wrapping the iteration in a function literal scopes the defer
		// to the iteration: the idiomatic fix, not flagged.
		func() {
			mu.Lock()
			defer mu.Unlock()
			body(i)
		}()
	}
}

//scalvet:hot suppression case
func hotSuppressed(n int, release func()) {
	for i := 0; i < n; i++ {
		defer release() //scalvet:ignore teardown stack intentionally accumulated per run
	}
	for i := 0; i < n; i++ {
		defer release() /* want "defer inside a hot loop" "needs a reason" */ //scalvet:ignore
	}
}

// cold: same shape, no annotation, no findings.
func cold(n int) {
	for i := 0; i < n; i++ {
		mu.Lock()
		defer mu.Unlock()
		body(i)
	}
}
