// Fixture for the spanend analyzer. The local StartSpan/Span pair mirrors
// the shape of scaltool/internal/obs (fixtures load stdlib-only, so the
// analyzer matches by shape, not import path).
package spanend

import "context"

type Span struct{}

func (s *Span) End()                    {}
func (s *Span) SetAttr(k string, v int) {}

func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

func work() error { return nil }

func goodDefer(ctx context.Context) {
	ctx, span := StartSpan(ctx, "good")
	defer span.End()
	_ = ctx
}

func goodDeferredClosure(ctx context.Context) error {
	_, span := StartSpan(ctx, "good-closure")
	defer func() {
		span.SetAttr("k", 1)
		span.End()
	}()
	return work()
}

func goodEveryPath(ctx context.Context) error {
	_, span := StartSpan(ctx, "good-paths")
	if err := work(); err != nil {
		span.End()
		return err
	}
	span.End()
	return nil
}

func goodNoReturn(ctx context.Context) {
	_, span := StartSpan(ctx, "good-fallthrough")
	span.End()
}

func badNeverEnded(ctx context.Context) {
	_, span := StartSpan(ctx, "bad") // want "span is never ended"
	_ = span
}

func badEarlyReturn(ctx context.Context) error {
	_, span := StartSpan(ctx, "bad-path") // want "not ended on every return path"
	if err := work(); err != nil {
		return err
	}
	span.End()
	return nil
}

func badDiscarded(ctx context.Context) {
	_, _ = StartSpan(ctx, "bad-discard") // want "StartSpan result discarded"
}

func badInsideLiteral(ctx context.Context) func() {
	return func() {
		_, span := StartSpan(ctx, "bad-lit") // want "span is never ended"
		_ = span
	}
}
