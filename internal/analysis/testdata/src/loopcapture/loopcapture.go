// Fixture for the loopcapture analyzer.
package loopcapture

import "sync"

func flagged(items []int) {
	var wg sync.WaitGroup
	for i, v := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = i // want "captures loop variable i"
			_ = v // want "captures loop variable v"
		}()
	}
	for j := 0; j < 4; j++ {
		go func() {
			_ = j // want "captures loop variable j"
		}()
	}
	wg.Wait()
}

func clean(items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		// Passing the loop variable as an argument evaluates it in the
		// loop; the parameter shadows it inside the body.
		go func(i int) {
			defer wg.Done()
			_ = i
		}(i)
	}
	for _, v := range items {
		_ = v // no goroutine: clean
	}
	wg.Wait()
}
