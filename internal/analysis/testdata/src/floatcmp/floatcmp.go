// Fixture for the floatcmp analyzer: flagged and clean comparisons.
package floatcmp

type cpi float64

func compare(a, b float64, c cpi, n int) bool {
	if a == b { // want "floating-point == comparison"
		return true
	}
	if a != 0 { // want "floating-point != comparison"
		return false
	}
	if c == 1 { // want "floating-point == comparison"
		return true
	}
	if n == 3 { // integers compare exactly: clean
		return true
	}
	const x = 1.5
	if x == 1.5 { // both constant: folds exactly, clean
		return a < b // ordered comparisons are clean
	}
	return a <= b
}
