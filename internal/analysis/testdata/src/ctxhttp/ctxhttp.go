// Fixture for the ctxhttp analyzer. handleJob is handler-shaped, so it
// and everything it transitively calls is held to the request-context
// rule; orphan() has no handler caller and is exempt.
package ctxhttp

import (
	"context"
	"net/http"
)

type store struct{}

func (s *store) fetch(ctx context.Context, key string) string { return key }

var db store

func handleJob(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "handleJob creates context.Background"
	_ = db.fetch(ctx, r.URL.Path)

	go rebuildIndex() // want "handleJob launches a goroutine no context reaches"

	// The fixes: propagate r.Context(), and hand it to spawned work.
	_ = db.fetch(r.Context(), r.URL.Path)
	go watch(r.Context())

	helper(r)
}

// helper is not handler-shaped itself but is reachable from handleJob, so
// the same rule applies transitively.
func helper(r *http.Request) {
	ctx := context.TODO() // want "helper creates context.TODO"
	_ = db.fetch(ctx, "k")
}

func rebuildIndex()               {}
func watch(ctx context.Context)   {}
func process(ctx context.Context) {}

// orphan is unreachable from any handler: background context is fine in
// main-path setup code.
func orphan() {
	process(context.Background())
	go rebuildIndex()
}

func handleSuppressed(w http.ResponseWriter, r *http.Request) {
	go rebuildIndex() //scalvet:ignore index rebuild must outlive the request by design
	_ = db
	go rebuildIndex() /* want "launches a goroutine no context reaches" "needs a reason" */ //scalvet:ignore
}
