// Fixture for the counterconv analyzer. Set stands in for counters.Set
// and Report for counters.RunReport; the test configures the analyzer
// with "counterconv.Set"/"counterconv.Report" and allowlists ratio.
package counterconv

type Set [4]uint64

type Report struct {
	Wall    uint64
	Procs   int
	PerProc []Set
}

func (s *Set) Get(i int) uint64 { return s[i] }

func flagged(s Set, r Report, e int) float64 {
	a := float64(s[e])     // want "lossy conversion of counter s"
	b := float64(r.Wall)   // want "lossy conversion of counter r.Wall"
	c := int(s[0])         // want "lossy conversion of counter s"
	d := float64(s.Get(e)) // want "lossy conversion of counter s.Get"
	return a + b + float64(c) + d
}

func clean(s Set, r Report, plain uint64) float64 {
	v := s[0]            // laundering through a local is not tracked (documented)
	_ = float64(plain)   // plain uint64, not a counter type
	_ = uint64(r.Wall)   // same-width copy: not lossy
	_ = float64(r.Procs) // int field, not a uint64 counter
	return float64(v) + ratio(s, 1)
}

// ratio is the allowlisted helper: counter conversions inside it are the
// sanctioned path.
func ratio(s Set, e int) float64 {
	if s[e] == 0 {
		return 0
	}
	return float64(s[e])
}
