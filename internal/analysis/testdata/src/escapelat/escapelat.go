// Fixture for the escape lattice: each local's name says what shape of
// flow it exercises; escape_test.go asserts the verdicts by name.
package escapelat

var sink []int

func use(v []int)  {}
func useInt(n int) {}

func sample(n int, ch chan []int) ([]int, *int) {
	returned := make([]int, 4)

	addressed := 0
	ptr := &addressed

	sent := make([]int, 1)
	ch <- sent

	stored := make([]int, 2)
	sink = stored

	called := make([]int, 3)
	use(called)

	captured := make([]int, 5)
	go func() { _ = captured }()

	localOnly := make([]int, 6)
	localOnly[0] = n
	copied := localOnly
	copied[0]++

	aliasEsc := make([]int, 7)
	alias2 := aliasEsc
	sink = alias2

	scalarRead := make([]int, 8)
	useInt(scalarRead[0])

	_ = ptr
	return returned, &addressed
}
