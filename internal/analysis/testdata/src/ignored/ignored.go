// Fixture for //scalvet:ignore suppression, exercised with an
// unrestricted floatcmp instance.
package ignored

func eq(a, b float64) bool {
	if a == b { //scalvet:ignore exact compare intended in this fixture
		return true
	}
	//scalvet:ignore the directive on its own line covers the next line
	if a != b {
		return false
	}
	if a == 0 { /* want "floating-point == comparison" "needs a reason" */ //scalvet:ignore
		return true
	}
	return a != 1 // want "floating-point != comparison"
}
