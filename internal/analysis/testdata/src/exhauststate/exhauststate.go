// Fixture for the exhauststate analyzer; State mimics cache.State and is
// configured as "exhauststate.State" by the test.
package exhauststate

type State uint8

const (
	Invalid State = iota
	Shared
	Modified
)

// other is an enum the test does NOT configure: never checked.
type other int

const (
	alpha other = iota
	beta
)

func flagged(s State) string {
	switch s { // want "misses Modified"
	case Invalid:
		return "I"
	case Shared:
		return "S"
	}
	return "?"
}

func flaggedTwo(s State) string {
	switch s { // want "misses Invalid, Shared"
	case Modified:
		return "M"
	}
	return "?"
}

func cleanAllCovered(s State) string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	}
	return "?"
}

func cleanDefault(s State) string {
	switch s {
	case Invalid:
		return "I"
	default:
		return "?"
	}
}

func cleanUnconfigured(o other) int {
	switch o { // non-configured enum: not checked
	case alpha:
		return 1
	}
	return 0
}

func cleanUntagged(s State) int {
	switch { // no tag: not an enum switch
	case s == Invalid:
		return 1
	}
	return 0
}
