// Fixture for the closecheck analyzer.
package closecheck

import "os"

func deferredClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "unchecked (*os.File).Close error on a write path"
	_, err = f.WriteString("x")
	return err
}

func bareCalls(path string) {
	f, _ := os.OpenFile(path, os.O_WRONLY, 0o644)
	f.Sync()  // want "unchecked (*os.File).Sync error on a write path"
	f.Close() // want "unchecked (*os.File).Close error on a write path"
}

func tempFile() {
	f, _ := os.CreateTemp("", "x")
	defer f.Sync() // want "unchecked (*os.File).Sync error on a write path"
	if err := f.Close(); err != nil {
		_ = err
	}
}

// readOnly: os.Open files carry no buffered writes, so their close error
// loses nothing and stays unflagged.
func readOnly(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	_, err = f.Read(buf[:])
	return err
}

// clean shows every accepted form: error checked in a deferred closure,
// returned from Sync, and explicitly discarded on an error path.
func clean(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if _, werr := f.WriteString("x"); werr != nil {
		return werr
	}
	return f.Sync()
}

func discarded(path string) {
	f, _ := os.Create(path)
	_ = f.Sync()
	_ = f.Close()
}

func suppressed(path string) {
	f, _ := os.Create(path)
	//scalvet:ignore fixture demonstrates suppression
	f.Close()
}
