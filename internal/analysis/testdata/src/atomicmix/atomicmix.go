// Fixture for the atomicmix analyzer.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	hits   uint64 // accessed atomically AND plainly: every plain use flagged
	misses uint64 // plain-only: never flagged
	typed  atomic.Uint64
}

var dropped uint64 // package var mixed the same way

func (c *counters) record() {
	atomic.AddUint64(&c.hits, 1) // the atomic side is the declared intent
	c.misses++
	c.typed.Add(1)
	atomic.AddUint64(&dropped, 1)
}

func (c *counters) report() (uint64, uint64) {
	h := c.hits  // want "hits is accessed via sync/atomic"
	d := dropped // want "dropped is accessed via sync/atomic"
	return h, d
}

func (c *counters) reset() {
	c.hits = 0 // want "hits is accessed via sync/atomic"
	c.misses = 0
	c.typed.Store(0)
	atomic.StoreUint64(&dropped, 0) // atomic access: fine
}

// readLoad uses the atomic API consistently: fine.
func (c *counters) readLoad() uint64 {
	return atomic.LoadUint64(&c.hits)
}

type guarded struct {
	mu sync.Mutex
	n  uint64
}

// lockOnly never touches sync/atomic, so plain access under the lock is
// outside this analyzer's scope.
func (g *guarded) lockOnly() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func (c *counters) suppressed() uint64 {
	a := c.hits //scalvet:ignore torn read acceptable in the stats snapshot
	a += c.misses
	b := c.hits /* want "hits is accessed via sync/atomic" "needs a reason" */ //scalvet:ignore
	return a + b
}
