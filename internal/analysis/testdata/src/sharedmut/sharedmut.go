// Fixture for the sharedmut analyzer.
package sharedmut

import "sync"

type state struct {
	mu    sync.Mutex
	count int
}

func flaggedAccumulator(n int) int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			total += k // want "goroutine writes total"
		}(i)
	}
	wg.Wait()
	return total
}

func flaggedField(s *state) {
	go func() {
		s.count++ // want "goroutine writes s.count"
	}()
}

func flaggedPointer(p *int) {
	go func() {
		*p = 1 // want "goroutine writes *p"
	}()
}

func cleanMutex(s *state) {
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.count++
	}()
}

func cleanSlots(outs []int, n int) {
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			outs[p] = p * p // distinct slot per worker: clean
		}(p)
	}
	wg.Wait()
}

func cleanLocal() {
	go func() {
		local := 0
		local++
		_ = local
	}()
}
