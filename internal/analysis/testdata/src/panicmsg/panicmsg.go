// Fixture for the panicmsg analyzer. The local "assert" value mimics the
// internal/assert helpers (fixtures load standalone and cannot import
// module packages); the analyzer matches assert.* calls syntactically.
package panicmsg

import "fmt"

type asserter struct{}

func (asserter) True(cond bool, format string, args ...any) {}
func (asserter) Failf(format string, args ...any)           {}
func (asserter) Unreachable(msg string)                     {}

var assert asserter

func flagged(x int, err error) {
	if x < 0 {
		panic("negative input") // want "does not start with"
	}
	if x == 1 {
		panic(fmt.Sprintf("bad value %d", x)) // want "does not start with"
	}
	if x == 2 {
		panic("otherpkg: wrong prefix") // want "does not start with"
	}
	assert.True(x > 0, "count must be positive, got %d", x) // want "does not start with"
	assert.Failf("bad state %d", x)                         // want "does not start with"
	assert.Unreachable("unknown enum value")                // want "does not start with"
}

func clean(x int, err error) {
	if x < 0 {
		panic("panicmsg: negative input")
	}
	if x == 1 {
		panic(fmt.Sprintf("panicmsg: bad value %d", x))
	}
	if x == 2 {
		panic("panicmsg: context: " + err.Error())
	}
	if err != nil {
		panic(err) // dynamic message: skipped
	}
	assert.True(x > 0, "panicmsg: count must be positive, got %d", x)
	assert.Failf("panicmsg: bad state %d", x)
	assert.Unreachable("panicmsg: unknown enum value")
}
