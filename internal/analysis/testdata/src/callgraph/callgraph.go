// Fixture for the Facts layer: call-graph edges, interface dispatch,
// function-value references, and hot propagation. Exercised by
// facts_test.go rather than // want annotations.
package callgraph

type shaper interface{ area() int }

type square struct{ s int }

func (q square) area() int { return q.s * q.s }

type circle struct{ r int }

func (c *circle) area() int { return 3 * c.r * c.r }

type blob struct{}

func (b blob) unrelated() int { return 0 }

//scalvet:hot fixture root
func root(ss []shaper) int {
	t := 0
	for _, s := range ss {
		t += s.area() // interface dispatch: expands to square.area and circle.area
	}
	t += helper()
	return t
}

func helper() int { return leaf() }

func leaf() int { return 1 }

// coldOnly shares callees with root but is not itself reachable from it.
func coldOnly() int { return leaf() }

//scalvet:hot fixture root
func viaValue() func() int {
	return valueTarget // function-value reference, approximated as an edge
}

func valueTarget() int { return 2 }

//scalvet:hot fixture root
func viaClosure() int {
	f := func() int { return closureTarget() }
	return f()
}

func closureTarget() int { return 3 }
