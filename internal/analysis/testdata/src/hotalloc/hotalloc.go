// Fixture for the hotalloc analyzer. Hotness comes from the
// //scalvet:hot annotation; cold() below proves unannotated functions
// are exempt from every rule.
package hotalloc

import (
	"errors"
	"fmt"
	"strconv"
)

type sink struct{ rows [][]uint64 }

var global [][]uint64

func consume(v any)       {}
func consumePtr(p *sink)  {}
func consumeInt(n int)    {}
func variadic(vs ...any)  {}
func spread(vs ...string) {}

//scalvet:hot fixture root
func hotMakes(n int, s *sink) {
	for i := 0; i < n; i++ {
		buf := make([]uint64, n) // want "make([]uint64) allocates every iteration"
		s.rows = append(s.rows, buf)

		m := make(map[string]int, n) // want "make(map[string]int) allocates every iteration"
		consume(m)

		ch := make(chan int, 4) // want "make(chan int) allocates every iteration"
		consume(ch)

		// Constant-sized and provably local: stack-allocatable, not flagged.
		tmp := make([]uint64, 8)
		tmp[0] = uint64(i)
		consumeInt(int(tmp[0]))
	}
	// Outside any loop make is a one-time cost: not flagged.
	once := make([]uint64, n)
	s.rows = append(s.rows, once)
}

//scalvet:hot fixture root
func hotLiterals(n int) {
	for i := 0; i < n; i++ {
		global = append(global, []uint64{uint64(i), 2}) // want "[]uint64 literal allocates every iteration"

		pair := map[string]int{"i": i} // want "map[string]int literal allocates every iteration"
		consume(pair)

		// Local, constant-shaped literal: the escape lattice proves it
		// stays in-frame, so it is not flagged.
		local := []uint64{1, 2, 3}
		consumeInt(int(local[0]))

		// Struct literals are values, not heap allocations per se.
		v := sink{}
		consumePtr(&v)
	}
}

//scalvet:hot fixture root
func hotAppends(items []int) []int {
	var out []int
	for _, it := range items {
		out = append(out, it) // want "append to out inside a hot loop regrows it"
	}
	capped := make([]int, 0, len(items))
	for _, it := range items {
		capped = append(capped, it) // capacity pinned at declaration: fine
	}
	_ = capped
	return out
}

//scalvet:hot fixture root
func hotConversions(words []string) int {
	total := 0
	for _, w := range words {
		b := []byte(w) // want "conversion to []byte allocates every iteration"
		total += len(b)
	}
	return total
}

//scalvet:hot fixture root
func hotFmt(names []string) (string, error) {
	if len(names) == 0 {
		// Return-operand error exits run at most once: not flagged.
		return "", fmt.Errorf("no names")
	}
	head := fmt.Sprintf("n=%d", len(names)) // want "fmt.Sprintf on the hot path"
	for _, n := range names {
		fmt.Println(n) // want "fmt.Println in a hot loop"
		if n == "" {
			return "", errors.New("empty name")
		}
		_ = strconv.Itoa(len(n)) // the recommended replacement: fine
	}
	return head, nil
}

//scalvet:hot fixture root
func hotBoxing(ns []int, ps []*sink, tags []string) {
	for _, n := range ns {
		consume(n)       // want "int argument is boxed into any"
		variadic(n, n+1) // want "int argument is boxed into any" "int argument is boxed into any"
		consume("tag")   // constants box into static data: fine
		consume(nil)     // nil is not boxed
		spread(tags...)  // s... passes the slice through, no boxing
	}
	for _, p := range ps {
		consume(p) // pointers fit the interface word: no allocation
	}
}

//scalvet:hot fixture root
func hotRangeHeader(extra []uint64) uint64 {
	var t uint64
	// The range expression evaluates once, before the first iteration:
	// not a per-iteration allocation.
	for _, v := range append([]uint64{1}, extra...) {
		t += v
	}
	return t
}

//scalvet:hot suppression case
func hotSuppressed(n int) {
	for i := 0; i < n; i++ {
		global = append(global, []uint64{uint64(i)}) //scalvet:ignore scratch rows, reset between regions
	}
	for i := 0; i < n; i++ {
		global = append(global, []uint64{uint64(i)}) /* want "[]uint64 literal allocates" "needs a reason" */ //scalvet:ignore
	}
}

// cold has no //scalvet:hot annotation and is unreachable from any root:
// identical code, zero findings.
func cold(n int) {
	for i := 0; i < n; i++ {
		buf := make([]uint64, n)
		global = append(global, buf)
		consume(i)
		_ = fmt.Sprintf("i=%d", i)
	}
}
