// Fixture for the ctxgo analyzer.
package ctxgo

import (
	"context"
	"sync"
)

type job struct{ id int }

func work(ctx context.Context, j job) {}

func plain(j job) {}

type pool struct {
	ctx context.Context
	wg  sync.WaitGroup
}

func (p *pool) step(j job) {}

func flagged(jobs []job) {
	for _, j := range jobs {
		go plain(j) // want "goroutine launched without a context"
	}
	go func() { // want "goroutine launched without a context"
		plain(job{})
	}()
	var p pool
	go p.step(job{}) // want "goroutine launched without a context"
}

func clean(ctx context.Context, jobs []job) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		// Context passed as an argument.
		go func(ctx context.Context, j job) {
			defer wg.Done()
			work(ctx, j)
		}(ctx, j)
	}
	// Context referenced from the literal's body.
	go func() {
		<-ctx.Done()
	}()
	// Context reaching the worker through a field.
	p := &pool{ctx: ctx}
	go func() {
		<-p.ctx.Done()
		p.step(job{})
	}()
	wg.Wait()
}
