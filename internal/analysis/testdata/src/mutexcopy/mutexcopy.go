// Fixture for the mutexcopy analyzer.
package mutexcopy

import "sync"

// box embeds a mutex two levels deep — detection is structural, so the
// embedding chain still convicts copies of outer.
type box struct {
	mu sync.Mutex
	n  int
}

type outer struct {
	b box
}

type plain struct{ n int }

func byValue(b box) int { // want "parameter passes box by value"
	return b.n
}

func byPointer(b *box) int { // pointer receiver of the copy problem: fine
	return b.n
}

func returnsValue() (o outer) { // want "result passes outer by value"
	return
}

func (b box) valueReceiver() int { // want "receiver passes box by value"
	return b.n
}

func (b *box) pointerReceiver() int { return b.n }

func assigns(src *outer, all []outer) {
	cp := *src // want "assignment copies outer by value"
	_ = cp
	direct := all[0] // want "assignment copies outer by value"
	_ = direct
	fresh := outer{} // composite literal mints a fresh value: fine
	_ = fresh
	p := &all[1] // taking the address copies nothing: fine
	_ = p
}

func ranges(all []box, safe []plain) int {
	total := 0
	for _, b := range all { // want "range value copies box per iteration"
		total += b.n
	}
	for i := range all { // index-only range: fine
		total += all[i].n
	}
	for _, s := range safe { // no lock anywhere in plain: fine
		total += s.n
	}
	return total
}

func sink(v any) {}

func callSites(b box, pb *box) { // want "parameter passes box by value"
	sink(b) // want "argument passes box by value"
	sink(pb)
	funcLit := func(inner box) int { // want "parameter passes box by value"
		return inner.n
	}
	_ = funcLit
}

func suppressed(src *box) {
	cp := *src //scalvet:ignore snapshot taken before the mutex is ever used
	_ = cp
	again := *src /* want "assignment copies box by value" "needs a reason" */ //scalvet:ignore
	_ = again
}
