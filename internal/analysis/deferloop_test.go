package analysis

import "testing"

func TestDeferLoop(t *testing.T) { testFixture(t, DeferLoop, "deferloop") }
