package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd flags spans obtained from a StartSpan call that are never ended.
// An unended span never emits its trace event, so the lane it occupies shows
// a hole exactly where the interesting (usually failing) work happened — the
// worst possible place for observability to go dark.
//
// StartSpan is matched by shape, not import path: any function named
// StartSpan returning (context.Context, *Span). The span is considered ended
// when its End is deferred in the same function (directly or inside a
// deferred closure); failing that, every return statement after the call
// must be preceded by an End call. The check is positional, not a full
// control-flow analysis — `defer span.End()` immediately after StartSpan is
// the idiom that always satisfies it.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "flags StartSpan spans with no deferred or per-return-path End",
	Run:  runSpanEnd,
}

func runSpanEnd(pass *Pass) {
	pass.Inspect(func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil {
			checkSpanBody(pass, body)
		}
		return true
	})
}

// shallowInspect walks stmts of one function body without descending into
// nested function literals (each literal is checked as its own body).
func shallowInspect(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// checkSpanBody verifies every StartSpan result inside one function body.
func checkSpanBody(pass *Pass, body *ast.BlockStmt) {
	type site struct {
		pos token.Pos
		obj types.Object
	}
	var sites []site
	shallowInspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isStartSpanCall(pass, call) {
			return true
		}
		if len(as.Lhs) != 2 {
			return true
		}
		id, ok := as.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "StartSpan result discarded; keep the span and defer span.End()")
			return true
		}
		if obj := pass.Pkg.Info.ObjectOf(id); obj != nil {
			sites = append(sites, site{pos: call.Pos(), obj: obj})
		}
		return true
	})

	for _, s := range sites {
		if hasDeferredEnd(pass, body, s.obj) {
			continue
		}
		var ends []token.Pos
		shallowInspect(body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isEndCallOn(pass, call, s.obj) {
				ends = append(ends, call.Pos())
			}
			return true
		})
		var missing bool
		var returns int
		shallowInspect(body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || ret.Pos() <= s.pos {
				return true
			}
			returns++
			if !anyBetween(ends, s.pos, ret.Pos()) {
				missing = true
			}
			return true
		})
		switch {
		case returns == 0 && !anyBetween(ends, s.pos, body.End()):
			pass.Reportf(s.pos, "span is never ended; defer span.End() right after StartSpan")
		case missing:
			pass.Reportf(s.pos, "span is not ended on every return path; prefer defer span.End()")
		}
	}
}

// hasDeferredEnd reports whether the body defers obj.End(), directly or
// inside a deferred closure.
func hasDeferredEnd(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	shallowInspect(body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return !found
		}
		if isEndCallOn(pass, ds.Call, obj) {
			found = true
			return false
		}
		if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isEndCallOn(pass, call, obj) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// isEndCallOn reports whether call is obj.End().
func isEndCallOn(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pass.Pkg.Info.ObjectOf(id) == obj
}

// isStartSpanCall matches the StartSpan shape: a call to a function named
// StartSpan whose results are (context.Context, *Span).
func isStartSpanCall(pass *Pass, call *ast.CallExpr) bool {
	var name string
	switch f := call.Fun.(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	}
	if name != "StartSpan" {
		return false
	}
	tup, ok := pass.TypeOf(call).(*types.Tuple)
	if !ok || tup.Len() != 2 || !isContextType(tup.At(0).Type()) {
		return false
	}
	ptr, ok := tup.At(1).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Span"
}

// anyBetween reports whether any pos lies strictly between lo and hi.
func anyBetween(ps []token.Pos, lo, hi token.Pos) bool {
	for _, p := range ps {
		if p > lo && p < hi {
			return true
		}
	}
	return false
}
