package analysis

import "testing"

func TestExhaustStateFixture(t *testing.T) {
	testFixture(t, NewExhaustState("exhauststate.State"), "exhauststate")
}
