package analysis

import "testing"

func TestCtxGo(t *testing.T) { testFixture(t, CtxGo, "ctxgo") }

func TestCtxGoAppliesOnlyToWorkerPools(t *testing.T) {
	if !CtxGo.appliesTo("scaltool/internal/campaign") || !CtxGo.appliesTo("scaltool/internal/sim") {
		t.Error("ctxgo must cover the campaign and sim worker pools")
	}
	if CtxGo.appliesTo("scaltool/internal/model") {
		t.Error("ctxgo must not apply outside the worker-pool packages")
	}
}
