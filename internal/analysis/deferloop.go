package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeferLoop flags two per-iteration costs inside loops of hot-reachable
// functions:
//
//   - a defer statement — its function runs only when the *enclosing
//     function* returns, so a defer in a hot loop accumulates one pending
//     call per iteration (pinning whatever it captures) instead of
//     releasing per iteration. A defer inside a function literal in the
//     loop is fine: each call of the literal runs its own defers.
//   - an obs.StartSpan call — spans are cheap but not free (two timestamps
//     and an event append); the observability budget (DESIGN §9) is held by
//     keeping spans at region granularity, never per iteration.
var DeferLoop = &Analyzer{
	Name: "deferloop",
	Doc:  "flags defer or span-start inside loops of hot functions",
	Run:  runDeferLoop,
}

func runDeferLoop(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || !pass.Facts.HotDecl(pass.Pkg, decl) {
				continue
			}
			fn := pass.Pkg.Info.Defs[decl.Name].(*types.Func)
			chain := pass.Facts.HotChain(fn)
			inspectWithStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
				switch x := n.(type) {
				case *ast.DeferStmt:
					// Defers reset at function-literal boundaries.
					if loopsEnclosing(stack, true) > 0 {
						pass.Reportf(x.Pos(), "defer inside a hot loop runs only at function return, accumulating one pending call per iteration (hot path: %s); release inline or wrap the body in a function", chain)
					}
				case *ast.CallExpr:
					if loopsEnclosing(stack, false) == 0 {
						return true
					}
					if fn := calleeFunc(pass.Pkg.Info, x); fn != nil && fn.Name() == "StartSpan" &&
						fn.Pkg() != nil && isObsPackage(fn.Pkg().Path()) {
						pass.Reportf(x.Pos(), "span started inside a hot loop adds per-iteration tracing overhead (hot path: %s); hoist the span to the loop or region level", chain)
					}
				}
				return true
			})
		}
	}
}

func isObsPackage(path string) bool {
	return path == "internal/obs" || strings.HasSuffix(path, "/internal/obs")
}
