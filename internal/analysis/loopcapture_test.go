package analysis

import "testing"

func TestLoopCaptureFixture(t *testing.T) {
	testFixture(t, LoopCapture, "loopcapture")
}
