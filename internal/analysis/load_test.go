package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTestModule(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// moduleRoot resolves the repo root from this package's directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func renderDiags(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintf(&b, "%s\n", d)
	}
	return b.String()
}

// TestParallelLoadMatchesSerial is the correctness contract of the parallel
// loader: over the full module, the concurrent parse/type-check pipeline
// must produce byte-identical diagnostics to the single-goroutine reference
// implementation — same files, same positions, same order.
func TestParallelLoadMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module twice")
	}
	root := moduleRoot(t)

	par, err := LoadModule(root, []string{"./..."})
	if err != nil {
		t.Fatalf("parallel load: %v", err)
	}
	ser, err := LoadModuleSerial(root, []string{"./..."})
	if err != nil {
		t.Fatalf("serial load: %v", err)
	}

	if lp, ls := len(par.Requested), len(ser.Requested); lp != ls {
		t.Fatalf("requested package count differs: parallel %d, serial %d", lp, ls)
	}
	if lp, ls := len(par.All), len(ser.All); lp != ls {
		t.Fatalf("loaded package count differs: parallel %d, serial %d", lp, ls)
	}
	for i := range par.All {
		if par.All[i].Path != ser.All[i].Path {
			t.Fatalf("package order differs at %d: parallel %s, serial %s", i, par.All[i].Path, ser.All[i].Path)
		}
	}

	got := renderDiags(Run(par, All()))
	want := renderDiags(Run(ser, All()))
	if got != want {
		t.Errorf("parallel and serial loads disagree on diagnostics:\n--- parallel ---\n%s--- serial ---\n%s", got, want)
	}
}

// TestLoadModuleCycleError proves the parallel scheduler rejects import
// cycles with an error instead of deadlocking its worker pool.
func TestLoadModuleCycleError(t *testing.T) {
	dir := t.TempDir()
	writeTestModule(t, dir, map[string]string{
		"go.mod":    "module cyclemod\n\ngo 1.22\n",
		"a/a.go":    "package a\n\nimport \"cyclemod/b\"\n\nvar X = b.Y\n",
		"b/b.go":    "package b\n\nimport \"cyclemod/a\"\n\nvar Y = 1\n\nvar Z = a.X\n",
		"ok/ok.go":  "package ok\n",
		"ok2/o2.go": "package ok2\n",
	})
	_, err := LoadModule(dir, []string{"./..."})
	if err == nil {
		t.Fatal("import cycle must fail the load")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error should name the cycle, got: %v", err)
	}
}
