package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags per-iteration and avoidable allocations inside functions
// reachable from a hot root (sim.Run/RunContext, HTTP handlers,
// //scalvet:hot). BENCH_serve.json puts the uncached /v1/analyze path at
// ~880k allocs/op; this analyzer is the mechanical gate that keeps the
// SoA/pooling rewrite of internal/sim honest — a fresh allocation sneaking
// onto the hot path fails verify.sh instead of waiting for the next bench
// run to be eyeballed.
//
// Flagged in hot-reachable functions:
//
//   - make(slice/map/chan) and slice/map composite literals inside a loop,
//     unless the escape lattice proves the value stays local and its size is
//     constant (the compiler stack-allocates that shape);
//   - append inside a loop to a slice declared in the same function without
//     a capacity hint;
//   - string ↔ []byte/[]rune conversions inside a loop;
//   - fmt.Sprint/Sprintf/Sprintln anywhere, and any other fmt call inside a
//     loop — except calls that are operands of a return statement (error
//     exits run at most once);
//   - arguments boxed into interface parameters inside a loop.
//
// The analysis is lexical per function: an allocation in a function called
// from a loop is attributed to the callee, which is itself hot-reachable
// and so still checked.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocations, boxing and fmt on hot-reachable paths",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || !pass.Facts.HotDecl(pass.Pkg, decl) {
				continue
			}
			fn := pass.Pkg.Info.Defs[decl.Name].(*types.Func)
			h := &hotAllocCheck{
				pass:  pass,
				decl:  decl,
				chain: pass.Facts.HotChain(fn),
				esc:   pass.Facts.EscapeOf(pass.Pkg, decl),
			}
			h.run()
		}
	}
}

type hotAllocCheck struct {
	pass  *Pass
	decl  *ast.FuncDecl
	chain string
	esc   *EscapeInfo
}

func (h *hotAllocCheck) run() {
	inspectWithStack(h.decl.Body, func(n ast.Node, stack []ast.Node) bool {
		inLoop := loopsEnclosing(stack, false) > 0
		switch x := n.(type) {
		case *ast.CallExpr:
			h.call(x, stack, inLoop)
		case *ast.CompositeLit:
			if inLoop {
				h.compositeLit(x, stack)
			}
		}
		return true
	})
}

func (h *hotAllocCheck) call(call *ast.CallExpr, stack []ast.Node, inLoop bool) {
	info := h.pass.Pkg.Info
	// Builtin make.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if inLoop {
					h.makeCall(call, stack)
				}
			case "append":
				if inLoop {
					h.appendCall(call)
				}
			}
			return
		}
	}
	// Conversion string ↔ []byte/[]rune.
	if inLoop && h.isAllocatingConversion(call) {
		h.pass.Reportf(call.Pos(), "conversion to %s allocates every iteration of a hot loop (hot path: %s)",
			types.TypeString(info.TypeOf(call), types.RelativeTo(h.pass.Pkg.Types)), h.chain)
		return
	}
	// fmt use.
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		h.fmtCall(call, fn, stack, inLoop)
		return
	}
	// Interface boxing of arguments inside loops.
	if inLoop {
		h.boxing(call)
	}
}

// makeCall flags make inside a loop, unless the result provably stays local
// and is constant-sized (the stack-allocatable shape).
func (h *hotAllocCheck) makeCall(call *ast.CallExpr, stack []ast.Node) {
	info := h.pass.Pkg.Info
	t := info.TypeOf(call)
	constSized := true
	for _, a := range call.Args[1:] {
		if tv, ok := info.Types[a]; !ok || tv.Value == nil {
			constSized = false
		}
	}
	if _, isChan := t.Underlying().(*types.Chan); !isChan {
		if constSized && h.staysLocal(call, stack) {
			return
		}
	}
	h.pass.Reportf(call.Pos(), "make(%s) allocates every iteration of a hot loop (hot path: %s); hoist it out or reuse a buffer",
		types.TypeString(t, types.RelativeTo(h.pass.Pkg.Types)), h.chain)
}

// compositeLit flags slice/map literals in loops (escaping or dynamically
// shaped ones; a provably local literal is stack-allocatable).
func (h *hotAllocCheck) compositeLit(lit *ast.CompositeLit, stack []ast.Node) {
	// Only the outermost literal of a nested one.
	if len(stack) > 0 {
		if _, ok := stack[len(stack)-1].(*ast.CompositeLit); ok {
			return
		}
	}
	t := h.pass.Pkg.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
	default:
		return // struct/array literals are values, not heap allocations per se
	}
	if h.staysLocal(lit, stack) {
		return
	}
	h.pass.Reportf(lit.Pos(), "%s literal allocates every iteration of a hot loop (hot path: %s); hoist it out or reuse a buffer",
		types.TypeString(t, types.RelativeTo(h.pass.Pkg.Types)), h.chain)
}

// staysLocal reports that the allocation is bound to a variable the escape
// lattice proves local.
func (h *hotAllocCheck) staysLocal(alloc ast.Expr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	info := h.pass.Pkg.Info
	switch parent := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		if len(parent.Lhs) != len(parent.Rhs) {
			return false
		}
		for i, rhs := range parent.Rhs {
			if rhs != alloc {
				continue
			}
			id, ok := parent.Lhs[i].(*ast.Ident)
			if !ok {
				return false
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			return obj != nil && !h.esc.Escapes(obj)
		}
	case *ast.ValueSpec:
		for i, v := range parent.Values {
			if v != alloc || i >= len(parent.Names) {
				continue
			}
			obj := info.Defs[parent.Names[i]]
			return obj != nil && !h.esc.Escapes(obj)
		}
	}
	return false
}

// appendCall flags append-in-loop when the destination slice is declared in
// this function without a capacity hint.
func (h *hotAllocCheck) appendCall(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	info := h.pass.Pkg.Info
	obj := info.Uses[id]
	if obj == nil {
		return
	}
	declSite, found := h.sliceDeclWithoutCap(obj)
	if !found {
		return
	}
	pos := h.pass.Pkg.Fset.Position(declSite)
	h.pass.Reportf(call.Pos(), "append to %s inside a hot loop regrows it (declared without capacity at line %d; hot path: %s); preallocate with make(…, 0, n)",
		id.Name, pos.Line, h.chain)
}

// sliceDeclWithoutCap finds obj's declaration inside the function and
// reports whether it pins no capacity: `var s []T`, `s := []T{}`, or
// `s := make([]T, 0)`.
func (h *hotAllocCheck) sliceDeclWithoutCap(obj types.Object) (token.Pos, bool) {
	info := h.pass.Pkg.Info
	var pos token.Pos
	found := false
	ast.Inspect(h.decl, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.ValueSpec:
			for _, name := range x.Names {
				if info.Defs[name] == obj && len(x.Values) == 0 {
					if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
						pos, found = name.Pos(), true
					}
				}
			}
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || info.Defs[id] != obj || i >= len(x.Rhs) {
					continue
				}
				if uncappedSliceExpr(info, x.Rhs[i]) {
					pos, found = id.Pos(), true
				}
			}
		}
		return true
	})
	return pos, found
}

// uncappedSliceExpr matches `[]T{}` (empty literal) and `make([]T, 0)`.
func uncappedSliceExpr(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		if _, isSlice := info.TypeOf(x).Underlying().(*types.Slice); isSlice {
			return len(x.Elts) == 0
		}
	case *ast.CallExpr:
		id, ok := ast.Unparen(x.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
			return false
		}
		if _, isSlice := info.TypeOf(x).Underlying().(*types.Slice); !isSlice {
			return false
		}
		if len(x.Args) >= 3 {
			return false // explicit capacity
		}
		if len(x.Args) == 2 {
			tv, ok := info.Types[x.Args[1]]
			return ok && tv.Value != nil && tv.Value.String() == "0"
		}
	}
	return false
}

// isAllocatingConversion matches string↔[]byte/[]rune conversions, each of
// which copies its operand.
func (h *hotAllocCheck) isAllocatingConversion(call *ast.CallExpr) bool {
	info := h.pass.Pkg.Info
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	dst := tv.Type.Underlying()
	src := info.TypeOf(call.Args[0])
	if src == nil {
		return false
	}
	srcU := src.Underlying()
	return (isStringType(dst) && isByteOrRuneSlice(srcU)) ||
		(isByteOrRuneSlice(dst) && isStringType(srcU))
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// fmtCall applies the fmt policy: Sprint-family anywhere in a hot function,
// any fmt call inside a loop, but never as a return operand (error exits).
func (h *hotAllocCheck) fmtCall(call *ast.CallExpr, fn *types.Func, stack []ast.Node, inLoop bool) {
	if returnOperand(stack) {
		return
	}
	sprint := false
	switch fn.Name() {
	case "Sprint", "Sprintf", "Sprintln", "Appendf", "Append", "Appendln":
		sprint = true
	}
	if !sprint && !inLoop {
		return
	}
	where := "on the hot path"
	if inLoop {
		where = "in a hot loop"
	}
	h.pass.Reportf(call.Pos(), "fmt.%s %s allocates and reflects over its arguments (hot path: %s); format off the hot path or use strconv",
		fn.Name(), where, h.chain)
}

// returnOperand reports whether the innermost statement the node hangs off
// is a return — the `return nil, fmt.Errorf(…)` error-exit shape.
func returnOperand(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ReturnStmt:
			return true
		case ast.Stmt:
			return false
		}
	}
	return false
}

// boxing flags concrete values converted to interface parameters in loops.
func (h *hotAllocCheck) boxing(call *ast.CallExpr) {
	info := h.pass.Pkg.Info
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return // the fmt rule already covers its variadic any arguments
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.Value != nil {
			continue // constants box into static read-only data, no allocation
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
			continue // pointer-shaped: fits in the interface word, no allocation
		}
		h.pass.Reportf(arg.Pos(), "%s argument is boxed into %s every iteration of a hot loop (hot path: %s)",
			types.TypeString(at, types.RelativeTo(h.pass.Pkg.Types)),
			types.TypeString(pt, types.RelativeTo(h.pass.Pkg.Types)), h.chain)
	}
}
