package analysis

import (
	"go/ast"
	"go/types"
)

// MutexCopy flags sync types copied by value — a copied lock guards
// nothing, and a copied WaitGroup/Once splits its state in two. Detection
// is structural, so it survives embedding: a type "contains a lock" when
// its pointer method set carries Lock and Unlock, or any struct field
// (embedded or named, through arrays too) does.
//
// Flagged copy sites: value parameters, receivers and results; assignments
// whose right side is an existing value (composite literals and calls mint
// fresh values and are fine); range value variables; and call arguments.
var MutexCopy = &Analyzer{
	Name: "mutexcopy",
	Doc:  "flags sync types copied by value, embedding included",
	Run:  runMutexCopy,
}

func runMutexCopy(pass *Pass) {
	mc := &mutexCopyCheck{pass: pass, cache: map[types.Type]string{}}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				mc.funcDecl(x)
			case *ast.FuncLit:
				mc.fieldList(x.Type.Params, "parameter")
				mc.fieldList(x.Type.Results, "result")
			case *ast.AssignStmt:
				mc.assign(x)
			case *ast.RangeStmt:
				mc.rangeStmt(x)
			case *ast.CallExpr:
				mc.callArgs(x)
			}
			return true
		})
	}
}

type mutexCopyCheck struct {
	pass  *Pass
	cache map[types.Type]string
}

func (mc *mutexCopyCheck) funcDecl(d *ast.FuncDecl) {
	if d.Recv != nil {
		mc.fieldList(d.Recv, "receiver")
	}
	mc.fieldList(d.Type.Params, "parameter")
	mc.fieldList(d.Type.Results, "result")
}

func (mc *mutexCopyCheck) fieldList(fl *ast.FieldList, kind string) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		t := mc.pass.TypeOf(f.Type)
		if t == nil {
			continue
		}
		if culprit := mc.lockPath(t); culprit != "" {
			mc.pass.Reportf(f.Type.Pos(), "%s passes %s by value, copying %s; use a pointer",
				kind, mc.typeStr(t), culprit)
		}
	}
}

func (mc *mutexCopyCheck) assign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue // a discard evaluates, it does not store a copy
		}
		if !isExistingValue(rhs) {
			continue
		}
		t := mc.pass.TypeOf(rhs)
		if t == nil {
			continue
		}
		if culprit := mc.lockPath(t); culprit != "" {
			mc.pass.Reportf(as.Rhs[i].Pos(), "assignment copies %s by value, copying %s; use a pointer",
				mc.typeStr(t), culprit)
		}
	}
}

func (mc *mutexCopyCheck) rangeStmt(r *ast.RangeStmt) {
	if r.Value == nil {
		return
	}
	t := mc.pass.TypeOf(r.Value)
	if t == nil {
		return
	}
	if culprit := mc.lockPath(t); culprit != "" {
		mc.pass.Reportf(r.Value.Pos(), "range value copies %s per iteration, copying %s; range over indices or pointers",
			mc.typeStr(t), culprit)
	}
}

func (mc *mutexCopyCheck) callArgs(call *ast.CallExpr) {
	tv, ok := mc.pass.Pkg.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return // conversions re-type the same value
	}
	for _, arg := range call.Args {
		if !isExistingValue(arg) {
			continue
		}
		t := mc.pass.TypeOf(arg)
		if t == nil {
			continue
		}
		if culprit := mc.lockPath(t); culprit != "" {
			mc.pass.Reportf(arg.Pos(), "argument passes %s by value, copying %s; pass a pointer",
				mc.typeStr(t), culprit)
		}
	}
}

// isExistingValue matches expressions denoting an already-stored value —
// the shapes whose copy duplicates lock state. Fresh values (composite
// literals, calls, conversions) are fine to move.
func isExistingValue(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// lockPath reports how t transitively contains a lock: "" when it does not,
// otherwise the innermost lock-bearing type's name. Pointers stop the
// search — holding a *sync.Mutex is the fix, not the bug.
func (mc *mutexCopyCheck) lockPath(t types.Type) string {
	if c, ok := mc.cache[t]; ok {
		return c
	}
	mc.cache[t] = "" // cycle guard: recursive types terminate as lock-free
	res := mc.lockPathUncached(t)
	mc.cache[t] = res
	return res
}

func (mc *mutexCopyCheck) lockPathUncached(t types.Type) string {
	switch u := t.(type) {
	case *types.Named:
		if hasLockUnlock(u) {
			return mc.typeStr(u)
		}
		return mc.lockPath(u.Underlying())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if c := mc.lockPath(u.Field(i).Type()); c != "" {
				return c
			}
		}
	case *types.Array:
		return mc.lockPath(u.Elem())
	}
	return ""
}

// hasLockUnlock reports whether *T's method set declares Lock and Unlock —
// the sync.Locker contract that marks a type as must-not-copy (sync.Mutex,
// RWMutex, and the noCopy sentinel inside WaitGroup, Once, Pool, the typed
// atomics, …).
func hasLockUnlock(n *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(n))
	hasLock, hasUnlock := false, false
	for i := 0; i < ms.Len(); i++ {
		f, ok := ms.At(i).Obj().(*types.Func)
		if !ok {
			continue
		}
		sig := f.Type().(*types.Signature)
		if sig.Params().Len() != 0 || sig.Results().Len() != 0 {
			continue
		}
		switch f.Name() {
		case "Lock":
			hasLock = true
		case "Unlock":
			hasUnlock = true
		}
	}
	return hasLock && hasUnlock
}

func (mc *mutexCopyCheck) typeStr(t types.Type) string {
	return types.TypeString(t, types.RelativeTo(mc.pass.Pkg.Types))
}
