package analysis

import (
	"go/ast"
	"go/types"
)

// CounterConv flags lossy uint64→float64/int conversions of event-counter
// fields. float64 holds integers exactly only up to 2^53; a long campaign's
// cycle counter past that silently rounds, biasing the least-squares fits
// (Eq. 3) without any error. Conversions must go through an allowlisted
// helper (counters.ToFloat, which checks the bound, or the ratio helpers).
//
// A "counter expression" is an index into one of the configured counter
// types (counters.Set), a uint64 field selected from one
// (counters.RunReport, model.Measurement), or a uint64-returning method
// call on one. Values laundered through intermediate locals are not
// tracked — the analyzer is syntactic by design.
var CounterConv = NewCounterConv(
	[]string{"counters.Set", "counters.RunReport", "model.Measurement"},
	[]string{"ratio", "ToFloat"},
)

// NewCounterConv builds a counterconv instance. counterTypes lists the
// counter-bearing types as "pkgname.TypeName"; allowFns names functions
// whose bodies are exempt.
func NewCounterConv(counterTypes, allowFns []string) *Analyzer {
	typeSet := map[string]bool{}
	for _, t := range counterTypes {
		typeSet[t] = true
	}
	allowSet := map[string]bool{}
	for _, f := range allowFns {
		allowSet[f] = true
	}
	a := &Analyzer{
		Name: "counterconv",
		Doc:  "flags lossy uint64→float64/int conversions of event-counter fields",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && allowSet[fd.Name.Name] {
					continue // allowlisted helper
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					checkCounterConv(pass, n, typeSet)
					return true
				})
			}
		}
	}
	return a
}

func checkCounterConv(pass *Pass, n ast.Node, counterTypes map[string]bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return // an ordinary call, not a conversion
	}
	if !lossyForUint64(tv.Type) {
		return
	}
	arg := ast.Unparen(call.Args[0])
	if !isUint64(pass.TypeOf(arg)) {
		return
	}
	if name, ok := counterOrigin(pass, arg, counterTypes); ok {
		pass.Reportf(call.Pos(), "lossy conversion of counter %s to %s (values past 2^53 lose precision); use counters.ToFloat or a ratio helper", name, tv.Type)
	}
}

// lossyForUint64 reports whether converting a uint64 to dst can lose
// information: floats round past 2^53, narrower or signed integers
// truncate or change sign.
func lossyForUint64(dst types.Type) bool {
	b, ok := dst.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch {
	case b.Info()&types.IsFloat != 0:
		return true
	case b.Info()&types.IsInteger != 0:
		return b.Kind() != types.Uint64 && b.Kind() != types.Uintptr
	}
	return false
}

func isUint64(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

// counterOrigin reports whether e reads directly from a configured counter
// type, returning a printable name for the diagnostic.
func counterOrigin(pass *Pass, e ast.Expr, counterTypes map[string]bool) (string, bool) {
	switch x := e.(type) {
	case *ast.IndexExpr:
		if namedIn(pass.TypeOf(x.X), counterTypes) {
			return types.ExprString(e), true
		}
	case *ast.SelectorExpr:
		if sel := pass.Pkg.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal && namedIn(pass.TypeOf(x.X), counterTypes) {
			return types.ExprString(e), true
		}
	case *ast.CallExpr:
		if fun, ok := x.Fun.(*ast.SelectorExpr); ok {
			if sel := pass.Pkg.Info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal && namedIn(pass.TypeOf(fun.X), counterTypes) {
				return types.ExprString(e), true
			}
		}
	}
	return "", false
}

// namedIn reports whether t (or what it points to) is a named type whose
// "pkgname.TypeName" is configured.
func namedIn(t types.Type, set map[string]bool) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return set[obj.Pkg().Name()+"."+obj.Name()]
}
