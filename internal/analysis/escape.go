package analysis

// escape.go — a small intraprocedural dataflow lattice over one function
// declaration: for every local variable, does the value stored in it stay
// local to the function or can it escape (be observed after the function
// returns, or by another goroutine)? The lattice has two points, Local ⊑
// Escapes, with a conditional-flow twist: an assignment `a = b` makes b's
// escape depend on a's, so the analysis seeds the certainly-escaping
// variables and propagates over dependency edges to a fixed point.
//
// It is deliberately conservative — closer to "provably stays local" than to
// the compiler's escape analysis. A variable escapes when it is:
//
//   - returned;
//   - address-taken (&x anywhere);
//   - passed to any call (except len/cap/delete/copy/print/println, and the
//     appended-to slice of append);
//   - assigned into a non-local lvalue, or into an lvalue rooted at an
//     escaping variable;
//   - captured by a function literal;
//   - sent on a channel;
//   - a parameter or receiver (its value is visible to the caller).
//
// hotalloc uses the lattice to skip in-loop allocations the compiler can
// stack-allocate (constant size, provably local); other analyzers can query
// it through Facts.EscapeOf.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EscapeInfo is the fixed point of the lattice for one declaration.
type EscapeInfo struct {
	esc map[types.Object]bool
}

// Escapes reports whether the value held by obj can outlive the function.
// Unknown objects (not locals of the analyzed declaration) escape.
func (e *EscapeInfo) Escapes(obj types.Object) bool {
	if obj == nil {
		return true
	}
	escaped, known := e.esc[obj]
	return !known || escaped
}

// escapeState carries one analysis in flight.
type escapeState struct {
	info *types.Info
	// esc: local → currently known to escape.
	esc map[types.Object]bool
	// deps: if key escapes, the dependents escape too (built from copies
	// `a = b` ⇒ deps[a] ∋ b and stores `a.f = b` ⇒ deps[a] ∋ b).
	deps map[types.Object][]types.Object
	// locals is the universe: objects defined inside the declaration.
	locals map[types.Object]bool
}

func escapeAnalysis(pkg *Package, decl *ast.FuncDecl) *EscapeInfo {
	st := &escapeState{
		info:   pkg.Info,
		esc:    map[types.Object]bool{},
		deps:   map[types.Object][]types.Object{},
		locals: map[types.Object]bool{},
	}
	// Universe: everything defined inside the declaration, parameters and
	// receiver included.
	ast.Inspect(decl, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj, ok := st.info.Defs[id].(*types.Var); ok && obj != nil {
			st.locals[obj] = true
		}
		return true
	})
	// Parameters and the receiver are caller-visible from the start.
	if sig, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
		if s, ok := sig.Type().(*types.Signature); ok {
			if r := s.Recv(); r != nil {
				st.markEscape(r)
			}
			for i := 0; i < s.Params().Len(); i++ {
				st.markEscape(s.Params().At(i))
			}
		}
	}
	if decl.Body != nil {
		st.walk(decl.Body)
		st.captures(decl.Body)
	}
	st.fixpoint()
	return &EscapeInfo{esc: st.esc}
}

func (st *escapeState) markEscape(obj types.Object) {
	if obj != nil && st.locals[obj] {
		st.esc[obj] = true
	}
}

// escapeLocalsIn seeds every local identifier of an expression as escaping.
func (st *escapeState) escapeLocalsIn(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := st.info.Uses[id]; obj != nil {
				st.markEscape(obj)
			}
		}
		return true
	})
}

// dependLocalsIn makes every local identifier of expr escape iff root does.
func (st *escapeState) dependLocalsIn(root types.Object, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := st.info.Uses[id]; obj != nil && st.locals[obj] && obj != root {
				st.deps[root] = append(st.deps[root], obj)
			}
		}
		return true
	})
}

func (st *escapeState) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				st.escapeLocalsIn(r)
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				st.escapeLocalsIn(x.X)
			}
		case *ast.SendStmt:
			st.escapeLocalsIn(x.Value)
		case *ast.CallExpr:
			st.call(x)
			return true
		case *ast.AssignStmt:
			st.assign(x)
		case *ast.ValueSpec:
			for i, name := range x.Names {
				obj := st.info.Defs[name]
				if obj == nil || i >= len(x.Values) {
					continue
				}
				st.dependLocalsIn(obj, x.Values[i])
			}
		}
		return true
	})
}

// assign wires `lhs = rhs` pairs: a direct local target makes the rhs's
// fate depend on the target's; a store through a selector/index path ties
// the rhs to the path's root, and a non-local root publishes the rhs.
func (st *escapeState) assign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		// Tuple assignment from a call: the call already handled the
		// arguments; the results are fresh values, no local-to-local flow.
		return
	}
	for i, lhs := range as.Lhs {
		rhs := as.Rhs[i]
		root, direct := lvalueRoot(lhs)
		if root == nil {
			st.escapeLocalsIn(rhs)
			continue
		}
		obj := st.info.Uses[root]
		if obj == nil {
			obj = st.info.Defs[root]
		}
		if obj == nil || !st.locals[obj] {
			st.escapeLocalsIn(rhs) // store into a global or unknown base
			continue
		}
		if !direct {
			// x.f = y / x[i] = y: y becomes reachable from x.
			st.dependLocalsIn(obj, rhs)
			continue
		}
		st.dependLocalsIn(obj, rhs)
	}
}

// lvalueRoot unwraps an lvalue to its base identifier; direct reports a
// plain `x = …` (no selector/index/deref path).
func lvalueRoot(e ast.Expr) (root *ast.Ident, direct bool) {
	direct = true
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, direct
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e, direct = x.X, false
		case *ast.IndexExpr:
			e, direct = x.X, false
		case *ast.StarExpr:
			e, direct = x.X, false
		default:
			return nil, false
		}
	}
}

// call treats arguments as escaping, with carve-outs for the non-retaining
// builtins and for append's destination slice.
func (st *escapeState) call(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := st.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "delete", "copy", "print", "println":
				return
			case "append":
				// append(s, elems…): the slice header is copied, not
				// retained; the elements land in s's backing array, so they
				// escape exactly when s does.
				if len(call.Args) == 0 {
					return
				}
				if root, _ := lvalueRoot(call.Args[0]); root != nil {
					if obj := st.info.Uses[root]; obj != nil && st.locals[obj] {
						for _, el := range call.Args[1:] {
							st.dependLocalsIn(obj, el)
						}
						return
					}
				}
				for _, el := range call.Args[1:] {
					st.escapeLocalsIn(el)
				}
				return
			case "make", "new":
				return
			}
		}
	}
	// Method call: the receiver may be retained by the callee.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := st.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			st.escapeRefsIn(sel.X)
		}
	}
	for _, a := range call.Args {
		st.escapeRefsIn(a)
	}
}

// escapeRefsIn is escapeLocalsIn restricted to reference-carrying values: a
// subexpression of basic type (tmp[0], s.count, int(x)) is a scalar copy
// that cannot retain the container it was read from, so its idents stay
// local. Address-of operands keep full marking — &x hands out a reference
// regardless of x's type.
func (st *escapeState) escapeRefsIn(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				st.escapeLocalsIn(x.X)
				return false
			}
		case ast.Expr:
			if t := st.info.TypeOf(x); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() != types.Invalid {
					return false // scalar value: copies, never aliases
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := st.info.Uses[id]; obj != nil {
				st.markEscape(obj)
			}
		}
		return true
	})
}

// captures marks locals of the enclosing declaration that a nested function
// literal closes over.
func (st *escapeState) captures(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		litLocal := map[types.Object]bool{}
		ast.Inspect(lit, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := st.info.Defs[id]; obj != nil {
					litLocal[obj] = true
				}
			}
			return true
		})
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := st.info.Uses[id]; obj != nil && st.locals[obj] && !litLocal[obj] {
					st.markEscape(obj)
				}
			}
			return true
		})
		return true
	})
}

// fixpoint propagates escape over the dependency edges until stable.
func (st *escapeState) fixpoint() {
	queue := make([]types.Object, 0, len(st.esc))
	for obj := range st.esc {
		queue = append(queue, obj)
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		for _, dep := range st.deps[obj] {
			if !st.esc[dep] {
				st.esc[dep] = true
				queue = append(queue, dep)
			}
		}
	}
	// Everything local and never marked is provably Local.
	for obj := range st.locals {
		if _, ok := st.esc[obj]; !ok {
			st.esc[obj] = false
		}
	}
}
