package analysis

import "testing"

func TestPanicMsgFixture(t *testing.T) {
	testFixture(t, PanicMsg, "panicmsg")
}

func TestHasPkgPrefix(t *testing.T) {
	cases := []struct {
		msg, pkg string
		want     bool
	}{
		{"cache: bad config", "cache", true},
		{"cache bad config", "cache", false},
		{"memdsm: x", "cache", false},
		{"scalvet: usage", "main", true},
		{"no prefix at all", "main", false},
		{": empty tag", "main", false},
	}
	for _, c := range cases {
		if got := hasPkgPrefix(c.msg, c.pkg); got != c.want {
			t.Errorf("hasPkgPrefix(%q, %q) = %v, want %v", c.msg, c.pkg, got, c.want)
		}
	}
}
