package analysis

import "testing"

func TestAtomicMix(t *testing.T) { testFixture(t, AtomicMix, "atomicmix") }
