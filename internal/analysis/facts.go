package analysis

// facts.go — the whole-program layer under scalvet v2. PR 1's analyzers
// inspected one function at a time, which cannot answer the questions the
// ROADMAP's perf campaign asks ("is this allocation on the simulator's hot
// path?", "does this handler propagate its request context?"). Facts builds
// the cross-package substrate once per run:
//
//   - a conservative call graph over every loaded package: an edge for every
//     static call or function-value reference, plus method-set expansion for
//     calls through interfaces (a call to I.M gets an edge to T.M for every
//     module type T implementing I);
//   - hot-path reachability from configurable roots: sim.Run/sim.RunContext,
//     HTTP-handler-shaped functions, and //scalvet:hot annotations;
//   - an atomic-access census (which struct fields are touched through
//     sync/atomic, and where);
//   - memoized per-function escape lattices (escape.go).
//
// Soundness limits (DESIGN §12): function values that travel across function
// boundaries are approximated by treating every *reference* to a declared
// function inside a hot body as an edge; reflection and dynamic dispatch
// through non-interface means are invisible. Nested function literals are
// attributed to their enclosing declaration, so an allocation inside a
// closure of a hot function is a hot allocation.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// hotAnnotation marks a function as a hot-path root when it appears in the
// function's doc comment:
//
//	//scalvet:hot
//	func inner() { ... }
const hotAnnotation = "//scalvet:hot"

// maxChainHops bounds the rendered reachability chain in diagnostics.
const maxChainHops = 6

// Facts is the whole-program knowledge analyzers query through their Pass.
type Facts struct {
	decls map[*types.Func]*declInfo
	calls map[*types.Func]map[*types.Func]bool
	hot   map[*types.Func]hotMark

	// atomicFields maps objects (struct fields or package vars) that are
	// accessed through sync/atomic somewhere in the program to the positions
	// of those atomic accesses.
	atomicFields map[types.Object][]token.Position

	escapes map[*ast.FuncDecl]*EscapeInfo
}

type declInfo struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// hotMark records how a function became hot: from is the caller that
// propagated hotness (nil for roots), why the root reason.
type hotMark struct {
	from *types.Func
	why  string
}

// buildFacts computes the program facts over the full loaded package set.
func buildFacts(pkgs []*Package) *Facts {
	f := &Facts{
		decls:        map[*types.Func]*declInfo{},
		calls:        map[*types.Func]map[*types.Func]bool{},
		hot:          map[*types.Func]hotMark{},
		atomicFields: map[types.Object][]token.Position{},
		escapes:      map[*ast.FuncDecl]*EscapeInfo{},
	}
	f.indexDecls(pkgs)
	f.buildEdges(pkgs)
	f.markRoots(pkgs)
	f.propagateHot()
	f.censusAtomic(pkgs)
	return f
}

func (f *Facts) indexDecls(pkgs []*Package) {
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				f.decls[fn] = &declInfo{fn: fn, decl: fd, pkg: pkg}
			}
		}
	}
}

// buildEdges adds one edge per referenced function (calls and function
// values alike) and expands interface method calls over the module's method
// sets.
func (f *Facts) buildEdges(pkgs []*Package) {
	named := moduleNamedTypes(pkgs)
	dispatch := map[*types.Func][]*types.Func{} // interface method → implementations

	for _, di := range f.decls {
		edges := f.calls[di.fn]
		if edges == nil {
			edges = map[*types.Func]bool{}
			f.calls[di.fn] = edges
		}
		info := di.pkg.Info
		ast.Inspect(di.decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if callee, ok := info.Uses[x].(*types.Func); ok {
					edges[callee] = true
				}
			case *ast.CallExpr:
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := info.Selections[sel]
				if !ok || s.Kind() != types.MethodVal {
					return true
				}
				m, ok := s.Obj().(*types.Func)
				if !ok || !types.IsInterface(s.Recv()) {
					return true
				}
				impls, cached := dispatch[m]
				if !cached {
					impls = implementations(m, s.Recv(), named)
					dispatch[m] = impls
				}
				for _, impl := range impls {
					edges[impl] = true
				}
			}
			return true
		})
	}
}

// moduleNamedTypes collects the named non-interface types declared at
// package scope across the module.
func moduleNamedTypes(pkgs []*Package) []*types.Named {
	var out []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			n, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(n) {
				continue
			}
			out = append(out, n)
		}
	}
	return out
}

// implementations resolves an interface method call conservatively: every
// module type whose method set satisfies the interface contributes its
// implementation of the method.
func implementations(m *types.Func, recv types.Type, named []*types.Named) []*types.Func {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, n := range named {
		ptr := types.NewPointer(n)
		if !types.Implements(n, iface) && !types.Implements(ptr, iface) {
			continue
		}
		selection := types.NewMethodSet(ptr).Lookup(m.Pkg(), m.Name())
		if selection == nil {
			continue
		}
		if impl, ok := selection.Obj().(*types.Func); ok {
			out = append(out, impl)
		}
	}
	return out
}

// markRoots seeds the hot set: the simulator entry points, HTTP-handler-
// shaped functions, and //scalvet:hot annotations.
func (f *Facts) markRoots(pkgs []*Package) {
	for _, di := range f.decls {
		switch {
		case isSimEntry(di):
			f.hot[di.fn] = hotMark{why: "sim entry point " + shortFuncName(di.fn)}
		case isHandlerShaped(di.fn):
			f.hot[di.fn] = hotMark{why: "HTTP handler " + shortFuncName(di.fn)}
		case hasHotAnnotation(di.decl):
			f.hot[di.fn] = hotMark{why: shortFuncName(di.fn) + " marked " + hotAnnotation}
		}
	}
}

func isSimEntry(di *declInfo) bool {
	if di.decl.Recv != nil {
		return false
	}
	if di.fn.Name() != "Run" && di.fn.Name() != "RunContext" {
		return false
	}
	p := di.pkg.Path
	return p == "internal/sim" || strings.HasSuffix(p, "/internal/sim")
}

// isHandlerShaped reports the func(http.ResponseWriter, *http.Request)
// signature, the shape net/http dispatches requests to.
func isHandlerShaped(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	if params.Len() != 2 {
		return false
	}
	if !isNetHTTPType(params.At(0).Type(), "ResponseWriter") {
		return false
	}
	ptr, ok := params.At(1).Type().(*types.Pointer)
	return ok && isNetHTTPType(ptr.Elem(), "Request")
}

func isNetHTTPType(t types.Type, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

func hasHotAnnotation(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, hotAnnotation) {
			return true
		}
	}
	return false
}

// propagateHot walks the call graph breadth-first from the roots, recording
// the propagating caller so diagnostics can print the chain. Both the seed
// set and each expansion are sorted: the maps under them iterate in random
// order, and the `from` pointer chosen here is rendered in diagnostics, so
// an unsorted walk would make scalvet's output differ run to run.
func (f *Facts) propagateHot() {
	queue := make([]*types.Func, 0, len(f.hot))
	for fn := range f.hot {
		queue = append(queue, fn)
	}
	sortFuncs(queue)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		callees := make([]*types.Func, 0, len(f.calls[fn]))
		for callee := range f.calls[fn] {
			callees = append(callees, callee)
		}
		sortFuncs(callees)
		for _, callee := range callees {
			if _, seen := f.hot[callee]; seen {
				continue
			}
			if _, hasBody := f.decls[callee]; !hasBody {
				continue // stdlib or bodiless: nothing to analyze behind it
			}
			f.hot[callee] = hotMark{from: fn}
			queue = append(queue, callee)
		}
	}
}

func sortFuncs(fns []*types.Func) {
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
}

// censusAtomic records every object whose address is passed to a sync/atomic
// call, with the position of each such access.
func (f *Facts) censusAtomic(pkgs []*Package) {
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				addr, ok := call.Args[0].(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				obj := atomicTarget(info, addr.X)
				if obj == nil {
					return true
				}
				f.atomicFields[obj] = append(f.atomicFields[obj], pkg.Fset.Position(addr.Pos()))
				return true
			})
		}
	}
}

// atomicTarget resolves the object behind an &expr atomic operand: a struct
// field (through any selector path) or a package-level variable.
func atomicTarget(info *types.Info, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[x.Sel].(*types.Var); ok && obj.IsField() {
			return obj
		}
	case *ast.Ident:
		if obj, ok := info.Uses[x].(*types.Var); ok && !obj.IsField() && obj.Parent() == obj.Pkg().Scope() {
			return obj
		}
	case *ast.IndexExpr:
		return atomicTarget(info, x.X)
	}
	return nil
}

// calleeFunc resolves a call's static callee, nil when dynamic.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsHot reports whether fn is reachable from a hot root.
func (f *Facts) IsHot(fn *types.Func) bool {
	_, ok := f.hot[fn]
	return ok
}

// HotDecl reports whether a declaration is hot, resolving it through the
// package's type info.
func (f *Facts) HotDecl(pkg *Package, decl *ast.FuncDecl) bool {
	fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
	return ok && f.IsHot(fn)
}

// HotChain renders the reachability evidence for a hot function:
// "sim entry point sim.RunContext → sim.(*engine).runRegion → …".
func (f *Facts) HotChain(fn *types.Func) string {
	if _, ok := f.hot[fn]; !ok {
		return ""
	}
	var hops []string
	for cur := fn; ; {
		hops = append(hops, shortFuncName(cur))
		m := f.hot[cur]
		if m.from == nil {
			// Root: lead with its reason instead of repeating the name.
			hops[len(hops)-1] = m.why
			break
		}
		cur = m.from
	}
	// hops is callee-first; reverse into root-first order.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	if len(hops) > maxChainHops {
		head := hops[:maxChainHops-1]
		hops = append(append([]string{}, head...), "…", hops[len(hops)-1])
	}
	return strings.Join(hops, " → ")
}

// AtomicUses returns where obj is accessed through sync/atomic (nil when it
// never is).
func (f *Facts) AtomicUses(obj types.Object) []token.Position {
	return f.atomicFields[obj]
}

// EscapeOf returns the memoized escape lattice of one declaration.
func (f *Facts) EscapeOf(pkg *Package, decl *ast.FuncDecl) *EscapeInfo {
	if e, ok := f.escapes[decl]; ok {
		return e
	}
	e := escapeAnalysis(pkg, decl)
	f.escapes[decl] = e
	return e
}

// shortFuncName renders sim.RunContext or serve.(*Server).handleAnalyze.
func shortFuncName(fn *types.Func) string {
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = path.Base(fn.Pkg().Path()) + "."
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		return pkgName + "(" + typeShort(sig.Recv().Type()) + ")." + fn.Name()
	}
	return pkgName + fn.Name()
}

func typeShort(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		return "*" + typeShort(ptr.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
