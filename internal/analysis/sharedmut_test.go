package analysis

import "testing"

func TestSharedMutFixture(t *testing.T) {
	testFixture(t, SharedMut, "sharedmut")
}
