package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// loadFacts builds the Facts layer over a standalone fixture package.
func loadFacts(t *testing.T, fixture string) (*Package, *Facts) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	return pkg, buildFacts([]*Package{pkg})
}

// funcNamed finds a declared function by shortFuncName suffix, e.g. "root"
// or "(square).area".
func funcNamed(t *testing.T, f *Facts, suffix string) *types.Func {
	t.Helper()
	var found *types.Func
	for fn := range f.decls {
		name := shortFuncName(fn)
		if strings.HasSuffix(name, "."+suffix) {
			if found != nil {
				t.Fatalf("ambiguous function suffix %q (%s and %s)", suffix, shortFuncName(found), name)
			}
			found = fn
		}
	}
	if found == nil {
		t.Fatalf("no declared function matching %q", suffix)
	}
	return found
}

func TestHotReachability(t *testing.T) {
	_, facts := loadFacts(t, "callgraph")
	for _, name := range []string{"root", "helper", "leaf"} {
		if !facts.IsHot(funcNamed(t, facts, name)) {
			t.Errorf("%s must be hot: it is reachable from the annotated root", name)
		}
	}
	// coldOnly calls leaf but nothing hot calls coldOnly.
	if facts.IsHot(funcNamed(t, facts, "coldOnly")) {
		t.Error("coldOnly is not reachable from any root and must stay cold")
	}
}

func TestInterfaceDispatchExpansion(t *testing.T) {
	_, facts := loadFacts(t, "callgraph")
	if !facts.IsHot(funcNamed(t, facts, "(square).area")) {
		t.Error("square.area must be hot: root calls area through the shaper interface")
	}
	if !facts.IsHot(funcNamed(t, facts, "(*circle).area")) {
		t.Error("circle.area must be hot: pointer receivers satisfy the interface too")
	}
	if facts.IsHot(funcNamed(t, facts, "(blob).unrelated")) {
		t.Error("blob.unrelated is not part of any interface root calls; it must stay cold")
	}
}

func TestFunctionValueAndClosureEdges(t *testing.T) {
	_, facts := loadFacts(t, "callgraph")
	if !facts.IsHot(funcNamed(t, facts, "valueTarget")) {
		t.Error("valueTarget must be hot: viaValue references it as a value (conservative edge)")
	}
	if !facts.IsHot(funcNamed(t, facts, "closureTarget")) {
		t.Error("closureTarget must be hot: called from a closure of the hot viaClosure")
	}
}

func TestHotChainRendering(t *testing.T) {
	_, facts := loadFacts(t, "callgraph")
	chain := facts.HotChain(funcNamed(t, facts, "leaf"))
	for _, want := range []string{"callgraph.root marked //scalvet:hot", "callgraph.helper", "callgraph.leaf", " → "} {
		if !strings.Contains(chain, want) {
			t.Errorf("HotChain(leaf) = %q, missing %q", chain, want)
		}
	}
	if got := facts.HotChain(funcNamed(t, facts, "coldOnly")); got != "" {
		t.Errorf("HotChain of a cold function must be empty, got %q", got)
	}
}

func TestEscapeLattice(t *testing.T) {
	pkg, facts := loadFacts(t, "escapelat")
	fn := funcNamed(t, facts, "sample")
	decl := facts.decls[fn].decl
	esc := facts.EscapeOf(pkg, decl)

	objs := map[string]types.Object{}
	ast.Inspect(decl, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := pkg.Info.Defs[id].(*types.Var); ok {
				objs[id.Name] = obj
			}
		}
		return true
	})

	want := map[string]bool{
		"returned":   true,  // returned to the caller
		"addressed":  true,  // address taken and returned
		"sent":       true,  // sent on a channel
		"stored":     true,  // stored into a package variable
		"called":     true,  // passed to a call
		"captured":   true,  // closed over by a goroutine's literal
		"aliasEsc":   true,  // escapes through alias2 (conditional flow)
		"alias2":     true,  // stored into a package variable
		"n":          true,  // parameters are caller-visible
		"localOnly":  false, // only indexed and copied locally
		"copied":     false, // alias of a local-only slice
		"scalarRead": false, // only a scalar element leaves, not the slice
	}
	for name, wantEsc := range want {
		obj, ok := objs[name]
		if !ok {
			t.Fatalf("fixture lost variable %q", name)
		}
		if got := esc.Escapes(obj); got != wantEsc {
			t.Errorf("Escapes(%s) = %v, want %v", name, got, wantEsc)
		}
	}
	if !esc.Escapes(nil) {
		t.Error("unknown objects must conservatively escape")
	}
}
