// Package assert centralizes the invariant checks the simulator packages
// previously open-coded as scattered panic(fmt.Sprintf(...)) calls. Every
// message must follow the repo-wide "pkg: message" convention, which the
// scalvet panicmsg analyzer machine-checks at the call sites.
//
// True is for cold paths (constructors, input validation): its variadic
// arguments cost an allocation per call even when the condition holds.
// Hot paths keep an explicit guard and call Failf only on failure:
//
//	if off >= r.Size {
//		assert.Failf("memdsm: offset %d out of region %q", off, r.Name)
//	}
package assert

import "fmt"

// True panics with the formatted message unless cond holds.
func True(cond bool, format string, args ...any) {
	if !cond {
		Failf(format, args...)
	}
}

// Failf unconditionally panics with the formatted "pkg: message" text.
// Hot paths pair it with an explicit condition so the variadic slice is
// only built on the failure path.
func Failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}

// Unreachable marks impossible default arms of enum switches.
func Unreachable(msg string) {
	panic(msg)
}
