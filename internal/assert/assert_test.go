package assert_test

import (
	"testing"

	"scaltool/internal/assert"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want %q", want)
		}
		if got, ok := r.(string); !ok || got != want {
			t.Fatalf("panic %v; want %q", r, want)
		}
	}()
	fn()
}

func TestTrueHolds(t *testing.T) {
	assert.True(1 < 2, "assert: should not fire")
}

func TestTrueFails(t *testing.T) {
	mustPanic(t, "assert: got 3", func() { assert.True(false, "assert: got %d", 3) })
}

func TestFailf(t *testing.T) {
	mustPanic(t, "assert: boom 7", func() { assert.Failf("assert: boom %d", 7) })
}

func TestUnreachable(t *testing.T) {
	mustPanic(t, "assert: impossible", func() { assert.Unreachable("assert: impossible") })
}
