package whatif

import (
	"math"
	"testing"

	"scaltool/internal/apps"
	"scaltool/internal/campaign"
	"scaltool/internal/machine"
	"scaltool/internal/model"
)

// fitted runs a small real campaign once and fits the model; all scenario
// tests share it.
var fittedModel *model.Model
var fittedCfg = machine.ScaledOrigin()

func getModel(t *testing.T) *model.Model {
	t.Helper()
	if fittedModel != nil {
		return fittedModel
	}
	app, _ := apps.ByName("t3dheat")
	plan, err := campaign.NewPlan(app, fittedCfg, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	rn := &campaign.Runner{Cfg: fittedCfg}
	res, err := rn.Run(app, plan)
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Fit(model.DefaultOptions(fittedCfg.L2.SizeBytes))
	if err != nil {
		t.Fatal(err)
	}
	fittedModel = m
	return m
}

func TestScenarioValidate(t *testing.T) {
	if err := (Scenario{}).Validate(); err != nil {
		t.Errorf("empty scenario rejected: %v", err)
	}
	if err := (Scenario{TmScale: -1}).Validate(); err == nil {
		t.Error("negative scale accepted")
	}
	for _, sc := range []Scenario{DoubleL2(), FasterMemory(), FasterSync(), WiderIssue()} {
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
		if sc.Name == "" {
			t.Error("unnamed standard scenario")
		}
	}
}

func TestNeutralScenarioReconstructsBaseline(t *testing.T) {
	m := getModel(t)
	preds, err := Evaluate(m, Scenario{Name: "neutral"})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(m.Points) {
		t.Fatalf("predictions = %d", len(preds))
	}
	for _, p := range preds {
		if p.NewCycles != p.BaselineCycles {
			t.Errorf("n=%d: neutral scenario changed cycles", p.Procs)
		}
		// The model's reconstruction of the measured run must be close —
		// this bounds every scenario's systematic error.
		rel := math.Abs(p.BaselineCycles-p.MeasuredCycles) / p.MeasuredCycles
		if rel > 0.15 {
			t.Errorf("n=%d: baseline reconstruction off by %.0f%% (%.3g vs %.3g)",
				p.Procs, 100*rel, p.BaselineCycles, p.MeasuredCycles)
		}
		if p.NewL2MissRate != p.L2MissRate {
			t.Errorf("n=%d: neutral scenario changed the miss rate", p.Procs)
		}
	}
}

func TestDoubleL2ReducesMissesAtLowCounts(t *testing.T) {
	m := getModel(t)
	preds, err := Evaluate(m, DoubleL2())
	if err != nil {
		t.Fatal(err)
	}
	p1 := preds[0]
	if p1.Procs != 1 {
		t.Fatal("first prediction not n=1")
	}
	// T3dheat's data set is 10× the L2: doubling the cache still leaves a
	// 5× overflow at n=1, so the gain there is modest but real.
	if p1.NewL2MissRate >= p1.L2MissRate {
		t.Errorf("n=1: miss rate %.3f → %.3f (no improvement)", p1.L2MissRate, p1.NewL2MissRate)
	}
	if sp := p1.SpeedupVsBaseline(); sp < 1.01 || sp > 1.5 {
		t.Errorf("n=1: speedup %.2f, want modest improvement", sp)
	}
	// The big win is where doubling makes the per-processor set fit: at
	// n=8, s0/(8·2) ≈ 0.63× the L2 versus an overflowing baseline.
	var p8 Prediction
	for _, p := range preds {
		if p.Procs == 8 {
			p8 = p
		}
	}
	if sp := p8.SpeedupVsBaseline(); sp < 1.1 {
		t.Errorf("n=8: speedup %.2f, want substantial once the set fits", sp)
	}
	if p8.NewL2MissRate >= 0.5*p8.L2MissRate+0.05 {
		t.Errorf("n=8: miss rate %.3f → %.3f, want a large cut", p8.L2MissRate, p8.NewL2MissRate)
	}
}

func TestHalfL2IncreasesMisses(t *testing.T) {
	m := getModel(t)
	preds, err := Evaluate(m, Scenario{Name: "half-L2", L2SizeFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	p1 := preds[0]
	if p1.NewL2MissRate < p1.L2MissRate {
		t.Errorf("halving the L2 reduced the miss rate: %.3f → %.3f", p1.L2MissRate, p1.NewL2MissRate)
	}
	if p1.NewCycles < p1.BaselineCycles {
		t.Error("halving the L2 made the program faster")
	}
}

func TestFasterMemoryHelpsMostWhenMissBound(t *testing.T) {
	m := getModel(t)
	preds, err := Evaluate(m, FasterMemory())
	if err != nil {
		t.Fatal(err)
	}
	// n=1 is miss-bound (conflict misses): 2× faster memory helps a lot.
	sp1 := preds[0].SpeedupVsBaseline()
	if sp1 < 1.2 {
		t.Errorf("n=1 speedup under 2x memory = %.2f, want large", sp1)
	}
	for _, p := range preds {
		if p.NewCycles > p.BaselineCycles {
			t.Errorf("n=%d: faster memory slowed the program", p.Procs)
		}
	}
}

func TestFasterSyncHelpsAtScale(t *testing.T) {
	m := getModel(t)
	preds, err := Evaluate(m, FasterSync())
	if err != nil {
		t.Fatal(err)
	}
	first, last := preds[0], preds[len(preds)-1]
	if first.NewCycles != first.BaselineCycles {
		t.Error("n=1 has no sync cost to remove")
	}
	if last.NewCycles >= last.BaselineCycles {
		t.Errorf("n=%d: faster sync did not help a barrier-heavy code", last.Procs)
	}
}

func TestWiderIssueScalesCompute(t *testing.T) {
	m := getModel(t)
	preds, err := Evaluate(m, WiderIssue())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range preds {
		if p.NewCycles >= p.BaselineCycles {
			t.Errorf("n=%d: wider issue did not help", p.Procs)
		}
		// Memory-bound at n=1: the gain must be well below the full 1.5×.
		if p.Procs == 1 && p.SpeedupVsBaseline() > 1.4 {
			t.Errorf("n=1: speedup %.2f too close to the issue-width ratio for a miss-bound code", p.SpeedupVsBaseline())
		}
	}
}

func TestEvaluateRejectsBadScenario(t *testing.T) {
	m := getModel(t)
	if _, err := Evaluate(m, Scenario{T2Scale: -2}); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestSweepL2Monotone(t *testing.T) {
	m := getModel(t)
	sweep, err := SweepL2(m, []float64{0.5, 1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 5 {
		t.Fatalf("sweep points = %d", len(sweep))
	}
	// At every processor count, more cache never predicts more cycles.
	for i := 1; i < len(sweep); i++ {
		for j := range sweep[i].Predictions {
			prev, cur := sweep[i-1].Predictions[j], sweep[i].Predictions[j]
			if cur.NewCycles > prev.NewCycles*1.0000001 {
				t.Errorf("k=%g→%g at n=%d: cycles rose %.4g → %.4g",
					sweep[i-1].Factor, sweep[i].Factor, cur.Procs, prev.NewCycles, cur.NewCycles)
			}
		}
	}
	if _, err := SweepL2(m, []float64{0}); err == nil {
		t.Error("zero factor accepted")
	}
}
