// Package whatif implements §2.6 of the paper: evaluating the performance
// impact of hypothetical machine changes by modifying the fitted model's
// parameters and re-evaluating its equations — without re-running the
// application. Supported knobs:
//
//   - faster/slower L2 cache, interconnect/memory, and synchronization
//     support (scaling t2, tm(n), tsync respectively),
//   - a different processor issue width (scaling cpi0),
//   - an L2 cache k× larger: the L2 miss rate splits into a coherence
//     component Coh(s0,n), assumed cache-size independent, plus a
//     uniprocessor component 1 − L2hitr(s0/(n·k), 1) — growing the cache by
//     k is like shrinking the per-processor data set by k (Eq. 11 and the
//     surrounding discussion),
//   - a new synchronization primitive (a replacement tsync), with the
//     paper's caveat that the imbalance interaction is not modelled.
package whatif

import (
	"fmt"

	"scaltool/internal/counters"
	"scaltool/internal/model"
	"scaltool/internal/stats"
)

// Scenario is a set of hypothetical machine changes. Scale factors default
// to 1 (unchanged) when zero.
type Scenario struct {
	Name string

	T2Scale    float64 // L2 cache speed: t2 → t2 × T2Scale
	TmScale    float64 // memory/interconnect speed: tm(n) → tm(n) × TmScale
	TSyncScale float64 // synchronization support: tsync(n) → tsync(n) × TSyncScale
	CPI0Scale  float64 // processor issue width: cpi0 → cpi0 × CPI0Scale

	// L2SizeFactor is the k of the paper's cache-growth estimate; 0 means
	// unchanged (the measured miss rate is kept). Any explicit value —
	// including exactly 1 — routes the miss rate through the Eq. 11
	// estimate, so a sweep over k is internally consistent. Values < 1
	// model a smaller cache.
	L2SizeFactor float64
}

func (s Scenario) normalized() Scenario {
	def := func(v *float64) {
		if *v == 0 {
			*v = 1
		}
	}
	def(&s.T2Scale)
	def(&s.TmScale)
	def(&s.TSyncScale)
	def(&s.CPI0Scale)
	def(&s.L2SizeFactor)
	return s
}

// Validate rejects non-physical scenarios.
func (s Scenario) Validate() error {
	s = s.normalized()
	for name, v := range map[string]float64{
		"T2Scale": s.T2Scale, "TmScale": s.TmScale, "TSyncScale": s.TSyncScale,
		"CPI0Scale": s.CPI0Scale, "L2SizeFactor": s.L2SizeFactor,
	} {
		if v < 0 {
			return fmt.Errorf("whatif: %s = %g must be non-negative", name, v)
		}
	}
	return nil
}

// Prediction is the model's estimate for one processor count under a
// scenario.
type Prediction struct {
	Procs int

	// BaselineCycles is the model's reconstruction of the measured run
	// (cycles accumulated over processors); comparing it against the
	// actual measurement bounds the reconstruction error.
	BaselineCycles float64
	// NewCycles is the predicted cycles under the scenario.
	NewCycles float64

	// MeasuredCycles is the actual measurement, for reference.
	MeasuredCycles float64

	// L2MissRate / NewL2MissRate are the local L2 miss rates before/after
	// (only the New value changes, and only via L2SizeFactor).
	L2MissRate    float64
	NewL2MissRate float64
}

// SpeedupVsBaseline returns BaselineCycles / NewCycles.
func (p Prediction) SpeedupVsBaseline() float64 {
	if p.NewCycles <= 0 {
		return 0
	}
	return p.BaselineCycles / p.NewCycles
}

// Evaluate predicts the scenario's impact at every measured processor
// count. The application is never re-run: everything derives from the
// fitted model and the campaign's uniprocessor curves.
func Evaluate(m *model.Model, sc Scenario) ([]Prediction, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	curveMiss := sc.L2SizeFactor != 0 // explicit k, even k=1: use the Eq. 11 estimate
	sc = sc.normalized()
	out := make([]Prediction, 0, len(m.Points))
	for _, pe := range m.Points {
		b := pe.Meas
		instr := counters.ToFloat(b.Instr)
		missBase := 1 - b.L2HitRate
		l1Misses := (b.H2 + b.Hm) * instr // absolute miss count — unchanged by the scenario

		cycles := func(cpi0, t2, tm, l2Miss, tsyncScale float64) float64 {
			busy := cpi0*(1-pe.FracSync-pe.FracImb)*instr +
				l1Misses*(t2*(1-l2Miss)+tm*l2Miss)
			sync := 0.0
			if b.Procs > 1 {
				// Eq. 10 re-evaluated under the new parameters.
				sync = counters.ToFloat(b.NtSync) * (cpi0 + pe.TSync*tsyncScale)
			}
			imb := m.CpiImb * pe.FracImb * instr
			return busy + sync + imb
		}

		p := Prediction{
			Procs:          pe.Procs,
			MeasuredCycles: counters.ToFloat(b.Cycles),
			L2MissRate:     missBase,
			NewL2MissRate:  missBase,
		}
		p.BaselineCycles = cycles(m.CPI0, m.T2, pe.TmN, missBase, 1)

		newMiss := missBase
		if curveMiss {
			// Eq. 11: coherence component unchanged; uniprocessor
			// component from the hit-rate curve at s0/(n·k).
			sEff := float64(m.S0) / (float64(pe.Procs) * sc.L2SizeFactor)
			newMiss = stats.Clamp(pe.Coh+(1-m.HitRateAt(sEff)), 0, 1)
			p.NewL2MissRate = newMiss
		}
		p.NewCycles = cycles(m.CPI0*sc.CPI0Scale, m.T2*sc.T2Scale, pe.TmN*sc.TmScale, newMiss, sc.TSyncScale)
		out = append(out, p)
	}
	return out, nil
}

// Standard named scenarios used by the CLI and the experiments harness.

// DoubleL2 returns the paper's running example: what if the L2 doubled?
func DoubleL2() Scenario { return Scenario{Name: "double-L2", L2SizeFactor: 2} }

// FasterMemory returns a 2× faster memory/interconnect scenario.
func FasterMemory() Scenario { return Scenario{Name: "memory-2x-faster", TmScale: 0.5} }

// FasterSync returns a 4× faster synchronization primitive scenario.
func FasterSync() Scenario { return Scenario{Name: "sync-4x-faster", TSyncScale: 0.25} }

// WiderIssue returns a 1.5× wider-issue processor scenario.
func WiderIssue() Scenario { return Scenario{Name: "issue-1.5x", CPI0Scale: 1 / 1.5} }

// SweepPoint is one entry of an L2-size sweep.
type SweepPoint struct {
	Factor      float64 // the k of Eq. 11
	Predictions []Prediction
}

// SweepL2 evaluates a range of L2-size factors — the "how much cache is
// enough" study a capacity-planning user runs. Factors must be positive.
func SweepL2(m *model.Model, factors []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(factors))
	for _, k := range factors {
		if k <= 0 {
			return nil, fmt.Errorf("whatif: non-positive L2 factor %g", k)
		}
		preds, err := Evaluate(m, Scenario{Name: fmt.Sprintf("l2x%g", k), L2SizeFactor: k})
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Factor: k, Predictions: preds})
	}
	return out, nil
}
