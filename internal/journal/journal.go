// Package journal is an append-only write-ahead log with checkpointing,
// built only on the standard library. A campaign's expensive state is the
// set of completed measurement runs; the journal makes that state survive
// process death (kill -9, OOM, power loss) so a resumed campaign replays
// what finished and re-executes only what did not.
//
// Layout: a journal is a directory of segment files (wal-<firstseq>.seg)
// plus at most a few snapshot files (snap-<seq>.snap). A segment is a
// sequence of framed records:
//
//	[4-byte LE payload length][4-byte LE CRC-32C][8-byte LE sequence][payload]
//
// The CRC (Castagnoli, the checksum NVMe and ext4 journaling use) covers
// the sequence number and the payload, so a torn or bit-flipped record
// never replays silently. Sequence numbers start at 1 and increase by one
// across segment boundaries; a segment file is named by the sequence of its
// first record.
//
// Durability policy: with SyncAlways (the default) every append is
// fsync'ed before it is acknowledged, and segment creation, rotation, and
// snapshot publication additionally fsync the directory, so an
// acknowledged record survives power loss. SyncNone leaves flushing to the
// OS — crash-safe against process death only.
//
// Crash anatomy on Open:
//
//   - a clean tail replays fully;
//   - a torn final record (partial header, short payload, CRC mismatch, or
//     a sequence break) in the LAST segment is truncated away — the write
//     never happened, which is exactly the contract the campaign relies on;
//   - the same damage in an earlier segment is real corruption and Open
//     refuses with ErrCorrupt rather than resurrecting a hole mid-history;
//   - a torn snapshot (crash during checkpointing) is ignored in favor of
//     the previous one — snapshots are published by atomic rename, and the
//     segments they compact are deleted only after the rename is durable.
//
// The Hook option is the crash laboratory: tests inject clean crashes,
// torn mid-record writes, and fsync failures at exact append counts
// (internal/faultinject translates its spec into a Hook).
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append (the default): an acknowledged
	// record survives power loss.
	SyncAlways SyncPolicy = iota
	// SyncNone never fsyncs on append: the OS flushes when it pleases.
	// Records still survive process death (the write hit the page cache).
	SyncNone
)

// Op names a journal operation a Hook can intercept.
type Op int

const (
	// OpAppend fires before a record is written; n counts appends from 1.
	OpAppend Op = iota
	// OpSync fires before a record fsync; n counts syncs from 1.
	OpSync
)

func (o Op) String() string {
	if o == OpSync {
		return "sync"
	}
	return "append"
}

// ErrTornWrite is the sentinel a Hook returns from OpAppend to make the
// journal write a deliberately truncated record — half the frame, no sync —
// before failing, simulating a process killed mid-write. Open truncates the
// torn tail away.
var ErrTornWrite = errors.New("journal: torn write injected")

// ErrCorrupt marks damage outside the replayable tail: a bad record in a
// non-final segment, or garbage where a frame should be. Test with
// errors.Is.
var ErrCorrupt = errors.New("journal: corrupt record")

// ErrClosed is returned by operations on a closed (or crash-failed)
// journal.
var ErrClosed = errors.New("journal: closed")

// Hook intercepts journal operations for deterministic fault injection.
// Returning a non-nil error from OpAppend aborts the append (wrapping
// ErrTornWrite leaves a torn frame behind first); from OpSync it skips the
// fsync and surfaces the error, simulating a storage stack that lost the
// write. After any hook failure the journal refuses further work.
type Hook func(op Op, n uint64) error

// Options configures Open.
type Options struct {
	// SegmentBytes rotates to a fresh segment once the current one exceeds
	// this size (0 = 256 KiB).
	SegmentBytes int64
	// Sync is the append durability policy.
	Sync SyncPolicy
	// Hook, when non-nil, intercepts appends and syncs (fault injection).
	Hook Hook
}

const (
	defaultSegmentBytes = 256 << 10
	headerBytes         = 16
	// maxRecordBytes bounds a frame's declared payload so a corrupt length
	// field cannot drive a giant allocation.
	maxRecordBytes = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the CRC-32C (Castagnoli) checksum the journal frames its
// records with, exported so the repo's other durability layers (the run
// cache's disk spill) share one integrity primitive instead of growing a
// second, subtly different one.
func Checksum(p []byte) uint32 { return crc32.Update(0, castagnoli, p) }

// Record is one replayed journal record.
type Record struct {
	Seq  uint64
	Data []byte
}

// OpenResult reports what Open recovered.
type OpenResult struct {
	// Snapshot is the newest valid checkpoint state (nil if none).
	Snapshot []byte
	// SnapshotSeq is the last sequence number the snapshot covers.
	SnapshotSeq uint64
	// Tail holds the records after the snapshot, in sequence order.
	Tail []Record
	// TornBytes counts bytes truncated from the final segment (0 = clean).
	TornBytes int64
	// Segments is the number of live segment files.
	Segments int
}

// segment is one live segment file.
type segment struct {
	firstSeq uint64
	path     string
}

// Journal is an open write-ahead journal. All methods are safe for
// concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	size     int64
	segments []segment
	nextSeq  uint64
	appendN  uint64 // hook counters
	syncN    uint64
	broken   error // first fatal error; journal refuses further work
	closed   bool
}

// Open opens (creating if needed) the journal in dir, recovers its state —
// newest valid snapshot plus the record tail, truncating a torn final
// record — and leaves the journal positioned to append.
func Open(dir string, opts Options) (*Journal, *OpenResult, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, opts: opts}
	res := &OpenResult{}

	snaps, segs, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}
	// Newest parseable snapshot wins; torn ones (a crash mid-checkpoint)
	// are skipped.
	for i := len(snaps) - 1; i >= 0; i-- {
		state, seq, err := readSnapshot(snaps[i].path)
		if err != nil {
			continue
		}
		res.Snapshot, res.SnapshotSeq = state, seq
		break
	}

	maxSeq := res.SnapshotSeq
	for i, seg := range segs {
		recs, keptBytes, torn, err := replaySegment(seg, i == len(segs)-1)
		if err != nil {
			return nil, nil, err
		}
		if torn > 0 {
			res.TornBytes = torn
			if err := truncateSegment(seg.path, keptBytes); err != nil {
				return nil, nil, err
			}
		}
		for _, r := range recs {
			if r.Seq <= res.SnapshotSeq {
				continue // already folded into the snapshot
			}
			if r.Seq != maxSeq+1 {
				return nil, nil, fmt.Errorf("journal: %s: sequence jumps %d → %d: %w",
					filepath.Base(seg.path), maxSeq, r.Seq, ErrCorrupt)
			}
			maxSeq = r.Seq
			res.Tail = append(res.Tail, r)
		}
	}
	j.nextSeq = maxSeq + 1
	j.segments = segs

	// Position for appending: reuse the last segment, or start the first.
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			closeQuiet(f)
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		j.f, j.size = f, st.Size()
	} else if err := j.newSegmentLocked(); err != nil {
		return nil, nil, err
	}
	res.Segments = len(j.segments)
	return j, res, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Append durably appends one record and returns its sequence number.
// After any error the journal is broken: the write may or may not be on
// disk (Open's torn-tail recovery decides), and further appends fail.
func (j *Journal) Append(data []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken != nil {
		return 0, j.broken
	}
	if j.closed {
		return 0, ErrClosed
	}
	if len(data) == 0 || len(data) > maxRecordBytes {
		return 0, fmt.Errorf("journal: record of %d bytes (want 1..%d)", len(data), maxRecordBytes)
	}

	frame := frameRecord(j.nextSeq, data)
	j.appendN++
	if h := j.opts.Hook; h != nil {
		if err := h(OpAppend, j.appendN); err != nil {
			if errors.Is(err, ErrTornWrite) {
				// Simulate death mid-write: half the frame lands, no sync.
				if _, werr := j.f.Write(frame[:len(frame)/2]); werr != nil {
					err = errors.Join(err, werr)
				}
			}
			j.broken = fmt.Errorf("journal: append %d: %w", j.appendN, err)
			return 0, j.broken
		}
	}

	// Rotate before the write so a frame never straddles segments.
	if j.size > 0 && j.size+int64(len(frame)) > j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			j.broken = err
			return 0, err
		}
	}
	if _, err := j.f.Write(frame); err != nil {
		j.broken = fmt.Errorf("journal: %w", err)
		return 0, j.broken
	}
	j.size += int64(len(frame))
	if j.opts.Sync == SyncAlways {
		j.syncN++
		if h := j.opts.Hook; h != nil {
			if err := h(OpSync, j.syncN); err != nil {
				// The fsync "failed": the record is in the page cache but
				// has no durability guarantee. Refuse further appends — a
				// journal that cannot promise durability must say so.
				j.broken = fmt.Errorf("journal: fsync of append %d: %w", j.appendN, err)
				return 0, j.broken
			}
		}
		if err := j.f.Sync(); err != nil {
			j.broken = fmt.Errorf("journal: fsync: %w", err)
			return 0, j.broken
		}
	}
	seq := j.nextSeq
	j.nextSeq++
	return seq, nil
}

// AppendedBytes is the frame size Append will write for a payload — for
// callers that meter journal throughput.
func AppendedBytes(data []byte) int { return headerBytes + len(data) }

// Snapshot checkpoints the journal: state (the caller's compaction of
// everything appended so far) is published atomically as the newest
// snapshot, the journal rotates to a fresh segment, and segments wholly
// covered by the snapshot are deleted. A crash at any point leaves either
// the old snapshot+segments or the new ones — never neither.
func (j *Journal) Snapshot(state []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken != nil {
		return j.broken
	}
	if j.closed {
		return ErrClosed
	}
	seq := j.nextSeq - 1 // everything appended so far is covered

	// Write the snapshot to a temp file, fsync, then atomically rename.
	final := filepath.Join(j.dir, snapName(seq))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, frameRecord(seq, state)); err != nil {
		j.broken = err
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		j.broken = fmt.Errorf("journal: publishing snapshot: %w", err)
		return j.broken
	}
	if err := syncDir(j.dir); err != nil {
		j.broken = err
		return err
	}

	// Start a fresh segment so the pre-snapshot ones become garbage…
	if err := j.rotateLocked(); err != nil {
		j.broken = err
		return err
	}
	// …and collect it: a segment is covered when the NEXT segment starts at
	// or before seq+1 (so every record in it has sequence ≤ seq). Old
	// snapshots are covered by the new one. Deletion failures are harmless
	// (replay skips covered records); ignore them.
	var live []segment
	for i, s := range j.segments {
		if i+1 < len(j.segments) && j.segments[i+1].firstSeq <= seq+1 {
			_ = os.Remove(s.path)
			continue
		}
		live = append(live, s)
	}
	j.segments = live
	snaps, _, err := scanDir(j.dir)
	if err == nil {
		for _, s := range snaps {
			if s.firstSeq < seq {
				_ = os.Remove(s.path)
			}
		}
	}
	return nil
}

// Sync flushes the current segment to stable storage (a no-op under
// SyncAlways, where every append already did).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken != nil {
		return j.broken
	}
	if j.closed {
		return ErrClosed
	}
	if err := j.f.Sync(); err != nil {
		j.broken = fmt.Errorf("journal: fsync: %w", err)
		return j.broken
	}
	return nil
}

// Close flushes and closes the journal. Idempotent; safe after a fault.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	var err error
	if j.broken == nil {
		err = j.f.Sync()
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	if err != nil {
		return fmt.Errorf("journal: close: %w", err)
	}
	return nil
}

// NextSeq returns the sequence number the next append will get.
func (j *Journal) NextSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq
}

// rotateLocked syncs and closes the current segment and opens a fresh one
// starting at nextSeq. Callers hold j.mu.
func (j *Journal) rotateLocked() error {
	if j.f != nil {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: rotating: %w", err)
		}
		if err := j.f.Close(); err != nil {
			return fmt.Errorf("journal: rotating: %w", err)
		}
		j.f = nil
	}
	return j.newSegmentLocked()
}

// newSegmentLocked creates the segment file for nextSeq. Callers hold j.mu.
func (j *Journal) newSegmentLocked() error {
	path := filepath.Join(j.dir, segName(j.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: new segment: %w", err)
	}
	if err := syncDir(j.dir); err != nil {
		closeQuiet(f)
		return err
	}
	j.f, j.size = f, 0
	j.segments = append(j.segments, segment{firstSeq: j.nextSeq, path: path})
	return nil
}

// frameRecord builds the on-disk frame for (seq, data).
func frameRecord(seq uint64, data []byte) []byte {
	buf := make([]byte, headerBytes+len(data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(data)))
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	copy(buf[headerBytes:], data)
	crc := Checksum(buf[8:])
	binary.LittleEndian.PutUint32(buf[4:8], crc)
	return buf
}

// parseRecord decodes one frame from buf. ok=false means buf holds no
// complete, checksummed record at its start (a torn tail if nothing
// follows).
func parseRecord(buf []byte) (rec Record, frameLen int, ok bool) {
	if len(buf) < headerBytes {
		return rec, 0, false
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	if n == 0 || n > maxRecordBytes || len(buf) < headerBytes+int(n) {
		return rec, 0, false
	}
	frameLen = headerBytes + int(n)
	crc := binary.LittleEndian.Uint32(buf[4:8])
	if Checksum(buf[8:frameLen]) != crc {
		return rec, 0, false
	}
	rec.Seq = binary.LittleEndian.Uint64(buf[8:16])
	rec.Data = append([]byte(nil), buf[headerBytes:frameLen:frameLen]...)
	return rec, frameLen, true
}

// replaySegment reads every valid record of one segment. For the final
// segment a bad record marks a torn tail: replay stops, and the caller
// truncates the file to keptBytes. For earlier segments the same damage is
// ErrCorrupt.
func replaySegment(seg segment, isLast bool) (recs []Record, keptBytes int64, tornBytes int64, err error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("journal: %w", err)
	}
	off := 0
	for off < len(data) {
		rec, n, ok := parseRecord(data[off:])
		if !ok {
			if !isLast {
				return nil, 0, 0, fmt.Errorf("journal: %s: bad record at offset %d: %w",
					filepath.Base(seg.path), off, ErrCorrupt)
			}
			return recs, int64(off), int64(len(data) - off), nil
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, int64(off), 0, nil
}

// truncateSegment durably truncates a torn tail off a segment file.
func truncateSegment(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: truncating torn tail: %w", err)
	}
	err = f.Truncate(size)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("journal: truncating torn tail: %w", err)
	}
	return nil
}

// readSnapshot parses one snapshot file (a single frame).
func readSnapshot(path string) (state []byte, seq uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	rec, n, ok := parseRecord(data)
	if !ok || n != len(data) {
		return nil, 0, fmt.Errorf("journal: %s: %w", filepath.Base(path), ErrCorrupt)
	}
	return rec.Data, rec.Seq, nil
}

// scanDir lists the journal's snapshot and segment files in ascending
// sequence order. Unrelated files (including leftover .tmp snapshots) are
// ignored.
func scanDir(dir string) (snaps, segs []segment, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
			if seq, ok := parseSeqName(name, "wal-", ".seg"); ok {
				segs = append(segs, segment{firstSeq: seq, path: filepath.Join(dir, name)})
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if seq, ok := parseSeqName(name, "snap-", ".snap"); ok {
				snaps = append(snaps, segment{firstSeq: seq, path: filepath.Join(dir, name)})
			}
		}
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i].firstSeq < segs[k].firstSeq })
	sort.Slice(snaps, func(i, k int) bool { return snaps[i].firstSeq < snaps[k].firstSeq })
	return snaps, segs, nil
}

func segName(seq uint64) string { return fmt.Sprintf("wal-%016x.seg", seq) }

func snapName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }

func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	s := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	seq, err := strconv.ParseUint(s, 16, 64)
	return seq, err == nil
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so file creations/renames in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("journal: dir sync: %w", err)
	}
	return nil
}

// closeQuiet closes a file whose contents no longer matter (error paths
// only); the close error is deliberately dropped.
func closeQuiet(f *os.File) { _ = f.Close() }
