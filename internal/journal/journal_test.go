package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openClean(t *testing.T, dir string, opts Options) (*Journal, *OpenResult) {
	t.Helper()
	j, res, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return j, res
}

func appendAll(t *testing.T, j *Journal, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if _, err := j.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
}

func tailStrings(res *OpenResult) []string {
	out := make([]string, 0, len(res.Tail))
	for _, r := range res.Tail {
		out = append(out, string(r.Data))
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, _ := openClean(t, dir, Options{})
	want := []string{"one", "two", "three"}
	appendAll(t, j, want...)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, res := openClean(t, dir, Options{})
	defer j2.Close()
	got := tailStrings(res)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	for i, r := range res.Tail {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d has seq %d", i, r.Seq)
		}
	}
	if res.TornBytes != 0 {
		t.Errorf("clean journal reported %d torn bytes", res.TornBytes)
	}
	// The reopened journal keeps appending where the first left off.
	seq, err := j2.Append([]byte("four"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Errorf("resumed append got seq %d, want 4", seq)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	for cut := 1; cut < headerBytes+4; cut++ {
		dir := t.TempDir()
		j, _ := openClean(t, dir, Options{})
		appendAll(t, j, "aaaa", "bbbb", "cccc")
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		// Chop `cut` bytes off the tail: a torn final record.
		segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if err != nil || len(segs) != 1 {
			t.Fatalf("segments: %v, %v", segs, err)
		}
		st, err := os.Stat(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(segs[0], st.Size()-int64(cut)); err != nil {
			t.Fatal(err)
		}

		j2, res := openClean(t, dir, Options{})
		if got := tailStrings(res); fmt.Sprint(got) != fmt.Sprint([]string{"aaaa", "bbbb"}) {
			t.Fatalf("cut=%d: replayed %v, want [aaaa bbbb]", cut, got)
		}
		if res.TornBytes == 0 {
			t.Errorf("cut=%d: torn truncation not reported", cut)
		}
		// The truncated journal accepts new appends at the right sequence.
		seq, err := j2.Append([]byte("c2"))
		if err != nil {
			t.Fatal(err)
		}
		if seq != 3 {
			t.Errorf("cut=%d: next seq %d, want 3", cut, seq)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		_, res2 := openClean(t, dir, Options{})
		if got := tailStrings(res2); fmt.Sprint(got) != fmt.Sprint([]string{"aaaa", "bbbb", "c2"}) {
			t.Fatalf("cut=%d: after repair+append replayed %v", cut, got)
		}
	}
}

func TestCorruptMiddleRefused(t *testing.T) {
	dir := t.TempDir()
	j, _ := openClean(t, dir, Options{SegmentBytes: 32}) // rotate every record
	appendAll(t, j, strings.Repeat("a", 24), strings.Repeat("b", 24), strings.Repeat("c", 24))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("want ≥ 3 segments, got %v", segs)
	}
	// Flip a payload byte in the FIRST segment: not a tail, so not repairable.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[headerBytes] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open error %v, want ErrCorrupt", err)
	}
}

func TestSegmentRotationAndSequenceContinuity(t *testing.T) {
	dir := t.TempDir()
	j, _ := openClean(t, dir, Options{SegmentBytes: 64})
	var want []string
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("payload-%02d", i)
		want = append(want, p)
	}
	appendAll(t, j, want...)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("rotation produced %d segments, want ≥ 3", len(segs))
	}
	_, res := openClean(t, dir, Options{})
	if got := tailStrings(res); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
}

func TestSnapshotCompactsSegments(t *testing.T) {
	dir := t.TempDir()
	j, _ := openClean(t, dir, Options{SegmentBytes: 64})
	appendAll(t, j, "r1", "r2", "r3", "r4", "r5")
	if err := j.Snapshot([]byte("STATE:r1..r5")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, "r6", "r7")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, res := openClean(t, dir, Options{})
	if string(res.Snapshot) != "STATE:r1..r5" {
		t.Fatalf("snapshot = %q", res.Snapshot)
	}
	if res.SnapshotSeq != 5 {
		t.Errorf("snapshot seq = %d, want 5", res.SnapshotSeq)
	}
	if got := tailStrings(res); fmt.Sprint(got) != fmt.Sprint([]string{"r6", "r7"}) {
		t.Fatalf("tail after snapshot = %v, want [r6 r7]", got)
	}
}

func TestSnapshotSurvivesTornSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	j, _ := openClean(t, dir, Options{})
	appendAll(t, j, "r1", "r2")
	if err := j.Snapshot([]byte("GOOD")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, "r3")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// A later snapshot that crashed mid-write: garbage content.
	if err := os.WriteFile(filepath.Join(dir, snapName(3)), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, res := openClean(t, dir, Options{})
	if string(res.Snapshot) != "GOOD" {
		t.Fatalf("snapshot = %q, want the previous valid one", res.Snapshot)
	}
	if got := tailStrings(res); fmt.Sprint(got) != fmt.Sprint([]string{"r3"}) {
		t.Fatalf("tail = %v, want [r3]", got)
	}
}

func TestHookCrashBeforeAppend(t *testing.T) {
	dir := t.TempDir()
	crashAt := uint64(3)
	hook := func(op Op, n uint64) error {
		if op == OpAppend && n == crashAt {
			return errors.New("injected crash")
		}
		return nil
	}
	j, _ := openClean(t, dir, Options{Hook: hook})
	appendAll(t, j, "r1", "r2")
	if _, err := j.Append([]byte("r3")); err == nil {
		t.Fatal("append survived the injected crash")
	}
	// The journal is broken: nothing more goes in.
	if _, err := j.Append([]byte("r4")); err == nil {
		t.Fatal("broken journal accepted an append")
	}
	_ = j.Close()
	_, res := openClean(t, dir, Options{})
	if got := tailStrings(res); fmt.Sprint(got) != fmt.Sprint([]string{"r1", "r2"}) {
		t.Fatalf("replayed %v, want [r1 r2]", got)
	}
}

func TestHookTornWrite(t *testing.T) {
	dir := t.TempDir()
	hook := func(op Op, n uint64) error {
		if op == OpAppend && n == 3 {
			return fmt.Errorf("mid-write death: %w", ErrTornWrite)
		}
		return nil
	}
	j, _ := openClean(t, dir, Options{Hook: hook})
	appendAll(t, j, "r1", "r2")
	if _, err := j.Append([]byte("r3")); err == nil {
		t.Fatal("torn append reported success")
	}
	_ = j.Close()
	// The file holds half a frame; Open must truncate it away.
	_, res := openClean(t, dir, Options{})
	if got := tailStrings(res); fmt.Sprint(got) != fmt.Sprint([]string{"r1", "r2"}) {
		t.Fatalf("replayed %v, want [r1 r2]", got)
	}
	if res.TornBytes == 0 {
		t.Error("torn bytes not reported")
	}
}

func TestHookFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	hook := func(op Op, n uint64) error {
		if op == OpSync && n == 2 {
			return errors.New("EIO")
		}
		return nil
	}
	j, _ := openClean(t, dir, Options{Hook: hook})
	appendAll(t, j, "r1")
	if _, err := j.Append([]byte("r2")); err == nil {
		t.Fatal("append with failed fsync reported success")
	}
	if _, err := j.Append([]byte("r3")); err == nil {
		t.Fatal("journal not broken after fsync failure")
	}
	_ = j.Close()
	// r2 hit the file (page cache) but was never synced: both the
	// record-present and record-lost crash outcomes must replay cleanly.
	_, res := openClean(t, dir, Options{})
	got := tailStrings(res)
	if fmt.Sprint(got) != fmt.Sprint([]string{"r1", "r2"}) && fmt.Sprint(got) != fmt.Sprint([]string{"r1"}) {
		t.Fatalf("replayed %v, want [r1 r2] or [r1]", got)
	}
}

func TestEmptyAndOversizeRecordsRefused(t *testing.T) {
	j, _ := openClean(t, t.TempDir(), Options{})
	defer j.Close()
	if _, err := j.Append(nil); err == nil {
		t.Error("empty record accepted")
	}
	if _, err := j.Append(bytes.Repeat([]byte("x"), maxRecordBytes+1)); err == nil {
		t.Error("oversize record accepted")
	}
	// Neither refusal breaks the journal.
	if _, err := j.Append([]byte("ok")); err != nil {
		t.Errorf("journal broken by refused records: %v", err)
	}
}

func TestClosedJournalRefusesWork(t *testing.T) {
	j, _ := openClean(t, t.TempDir(), Options{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := j.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close: %v, want ErrClosed", err)
	}
	if err := j.Snapshot([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("snapshot after close: %v, want ErrClosed", err)
	}
}

func TestSyncNonePolicyStillReplays(t *testing.T) {
	dir := t.TempDir()
	j, _ := openClean(t, dir, Options{Sync: SyncNone})
	appendAll(t, j, "a", "b", "c")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, res := openClean(t, dir, Options{})
	if got := tailStrings(res); fmt.Sprint(got) != fmt.Sprint([]string{"a", "b", "c"}) {
		t.Fatalf("replayed %v", got)
	}
}

func TestConcurrentAppendsAllSurvive(t *testing.T) {
	dir := t.TempDir()
	j, _ := openClean(t, dir, Options{Sync: SyncNone, SegmentBytes: 256})
	const n = 64
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			_, err := j.Append([]byte(fmt.Sprintf("rec-%02d", i)))
			done <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, res := openClean(t, dir, Options{})
	if len(res.Tail) != n {
		t.Fatalf("replayed %d records, want %d", len(res.Tail), n)
	}
	seen := map[string]bool{}
	for _, r := range res.Tail {
		seen[string(r.Data)] = true
	}
	if len(seen) != n {
		t.Fatalf("replay lost records: %d distinct of %d", len(seen), n)
	}
}
