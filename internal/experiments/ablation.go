package experiments

import (
	"fmt"
	"strings"

	"scaltool/internal/apps"
	"scaltool/internal/campaign"
	"scaltool/internal/counters"
	"scaltool/internal/machine"
	"scaltool/internal/memdsm"
	"scaltool/internal/model"
	"scaltool/internal/sim"
	"scaltool/internal/table"
)

// ExtSharing exercises the paper's stated future work (§6): estimating the
// true/false-sharing effect from counters, and cross-checking the two
// frac_sync methods of §2.4.2 (ntsync counter vs instrumented barrier
// count) — their gap measures exactly the ntsync pollution behind the
// paper's Swim caveat.
func (s *Suite) ExtSharing() string {
	var b strings.Builder
	for _, name := range PaperApps() {
		a := s.mustAnalysis(name)
		tb := table.New(fmt.Sprintf("sharing estimate — %s", name),
			"#procs", "#coh misses (est)", "#sync-induced", "#data sharing", "#sharing cycles",
			"#ntsync pollution", "#fs(ntsync)", "#fs(barriers)")
		for _, pe := range a.model.Points {
			est, ok := a.model.Sharing(pe.Procs)
			if !ok {
				continue
			}
			tb.Row(pe.Procs, est.CoherenceMisses, est.SyncInduced, est.DataMisses,
				est.Cycles, int(est.NtSyncPollution), est.FracSyncNtSync, est.FracSyncBarriers)
		}
		b.WriteString(tb.String())
		b.WriteString("\n")
	}
	b.WriteString("Swim's fs(ntsync) ≫ fs(barriers) at high counts — the §4.3 pollution made\nmeasurable; Hydro2d's methods agree (its DOACROSS bodies share nothing).\n")
	return b.String()
}

// AblationRawTm compares the default MP-decontaminated tm(n) against the
// paper's single-pass Eq. 1 estimate (ModelOptions.RawTmN): validation
// error and the Sync/Imb split at the largest count.
func (s *Suite) AblationRawTm() string {
	var b strings.Builder
	for _, name := range PaperApps() {
		a := s.mustAnalysis(name)
		raw, err := a.campaign.Fit(model.Options{
			L2Bytes: s.Cfg.L2.SizeBytes, OverflowFactor: 1.5, RawTmN: true,
		})
		if err != nil {
			panic(err)
		}
		measured := a.campaign.MeasuredMP()
		tb := table.New(fmt.Sprintf("tm(n) ablation — %s (MP error, %% of Base)", name),
			"#procs", "#tm(n) decon", "#tm(n) raw", "#err decon", "#err raw")
		for i, bp := range a.model.Breakdown() {
			rb := raw.Breakdown()[i]
			pe := a.model.Points[i]
			rpe := raw.Points[i]
			tb.Row(bp.Procs, pe.TmN, rpe.TmN,
				pct(bp.MP()-measured[bp.Procs], bp.Base),
				pct(rb.MP()-measured[rb.Procs], rb.Base))
		}
		b.WriteString(tb.String())
		b.WriteString("\n")
	}
	b.WriteString("The raw Eq. 1 tm(n) absorbs barrier-drain and spin cycles at high counts,\ninflating tm by up to ~10x and with it the MP estimate; the decontaminated\nsolve (DESIGN.md §6) keeps the validation inside the paper's band.\n")
	return b.String()
}

// AblationPlacement re-runs Swim's base points under the three page
// placement policies: first-touch (the paper's default), round-robin, and
// centralized (all pages on node 0).
func (s *Suite) AblationPlacement() string {
	app, err := apps.ByName("swim")
	if err != nil {
		panic(err)
	}
	s0 := app.DefaultBytes(s.Cfg)
	policies := []memdsm.Placement{memdsm.FirstTouch, memdsm.RoundRobin, memdsm.AllOnZero}
	walls := map[memdsm.Placement]map[int]float64{}
	for _, pol := range policies {
		walls[pol] = map[int]float64{}
		for n := 1; n <= s.MaxProcs; n *= 2 {
			prog, err := app.Build(s.Cfg, n, s0)
			if err != nil {
				panic(err)
			}
			prog.Placement = pol
			res, err := sim.Run(s.Cfg, prog)
			if err != nil {
				panic(err)
			}
			walls[pol][n] = res.WallCycles
		}
	}
	tb := table.New("page-placement ablation — Swim speedups",
		"#procs", "#first-touch", "#round-robin", "#all-on-node-0")
	for n := 1; n <= s.MaxProcs; n *= 2 {
		tb.Row(n,
			walls[memdsm.FirstTouch][1]/walls[memdsm.FirstTouch][n],
			walls[memdsm.RoundRobin][1]/walls[memdsm.RoundRobin][n],
			walls[memdsm.AllOnZero][1]/walls[memdsm.AllOnZero][n])
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nFirst-touch keeps each processor's misses local (the Origin default the\npaper's applications rely on); round-robin pays average-distance latency;\na centralized memory also bottlenecks every miss on one node.\n")
	return b.String()
}

// AblationMux refits the model from two-counter multiplexed measurements
// (perfex -a -mp emulation) and reports how much the breakdown moves — the
// measurement-realism robustness check.
func (s *Suite) AblationMux() string {
	a := s.mustAnalysis("t3dheat")
	in, err := a.campaign.Inputs()
	if err != nil {
		panic(err)
	}
	// Re-derive every measurement from a multiplexed view of its report.
	muxIn := model.Inputs{SyncKernel: map[int]model.Measurement{}, SpinCPI: in.SpinCPI}
	muxReport := func(r *counters.RunReport) model.Measurement {
		mr := counters.MultiplexReport(r, counters.DefaultMux(r.DataBytes^uint64(r.Procs)))
		return model.FromReport(mr)
	}
	for n, res := range a.campaign.BaseRuns {
		_ = n
		muxIn.Base = append(muxIn.Base, muxReport(&res.Report))
	}
	for _, res := range a.campaign.UniRuns {
		muxIn.Uniproc = append(muxIn.Uniproc, muxReport(&res.Report))
	}
	for n, res := range a.campaign.SyncKernels {
		muxIn.SyncKernel[n] = muxReport(&res.Report)
	}
	muxModel, err := model.Fit(muxIn, model.DefaultOptions(s.Cfg.L2.SizeBytes))
	if err != nil {
		panic(err)
	}
	tb := table.New("2-counter multiplexed measurement — T3dheat breakdown drift",
		"#procs", "#L2Lim% exact", "#L2Lim% mux", "#MP% exact", "#MP% mux")
	exact := a.model.Breakdown()
	muxed := muxModel.Breakdown()
	for i := range exact {
		tb.Row(exact[i].Procs,
			pct(exact[i].L2Lim(), exact[i].Base), pct(muxed[i].L2Lim(), muxed[i].Base),
			pct(exact[i].MP(), exact[i].Base), pct(muxed[i].MP(), muxed[i].Base))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nmodel under multiplexing: cpi0 %.3f vs %.3f, tm(1) %.1f vs %.1f — the 2%%\ncounter jitter of perfex multiplexing barely moves the conclusions.\n",
		a.model.CPI0, muxModel.CPI0, a.model.Tm1, muxModel.Tm1)
	return b.String()
}

// AblationProtocol demonstrates the paper's dependence on the Illinois
// protocol: "Since the Origin 2000 uses the Illinois cache coherence
// protocol, such operations largely imply sharing transactions" (§2.4.2).
// Re-running Swim's campaign on an MSI machine (no Exclusive state) makes
// every first write to read data fire the store-to-shared event, drowning
// ntsync and wrecking the frac_sync estimate.
func (s *Suite) AblationProtocol() string {
	app, err := apps.ByName("swim")
	if err != nil {
		panic(err)
	}
	msiCfg := s.Cfg
	msiCfg.Protocol = machine.MSI
	msiCfg.Name = s.Cfg.Name + "-msi"
	plan, err := campaign.NewPlan(app, msiCfg, s.MaxProcs, 0)
	if err != nil {
		panic(err)
	}
	rn := &campaign.Runner{Cfg: msiCfg, Workers: s.Workers}
	res, err := rn.Run(app, plan)
	if err != nil {
		panic(err)
	}
	msiModel, err := res.Fit(model.DefaultOptions(msiCfg.L2.SizeBytes))
	if err != nil {
		panic(err)
	}
	illinois := s.mustAnalysis("swim")
	msiMeasured := res.MeasuredMP()
	illMeasured := illinois.campaign.MeasuredMP()

	tb := table.New("coherence-protocol ablation — Swim ntsync, Sync share, MP error",
		"#procs", "#ntsync (Ill.)", "#ntsync (MSI)", "#Sync% (Ill.)", "#Sync% (MSI)",
		"#MP err% (Ill.)", "#MP err% (MSI)")
	msiBps := msiModel.Breakdown()
	for i, bp := range illinois.model.Breakdown() {
		pe := illinois.model.Points[i]
		mpe := msiModel.Points[i]
		mbp := msiBps[i]
		tb.Row(bp.Procs, pe.Meas.NtSync, mpe.Meas.NtSync,
			pct(bp.Sync, bp.Base), pct(mbp.Sync, mbp.Base),
			pct(bp.MP()-illMeasured[bp.Procs], bp.Base),
			pct(mbp.MP()-msiMeasured[mbp.Procs], mbp.Base))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nWithout the Exclusive state, every first write to read data fires the\nstore-to-shared event: ntsync multiplies, the Sync share absorbs cycles that\nare really imbalance, and the frac_sync estimate stops meaning\nsynchronization — exactly why the paper leans on the Illinois protocol for\nthis counter.\n")
	return b.String()
}

// ExtSegment exercises the paper's per-segment analysis ("these plots can
// be obtained for the overall application or for a segment of the
// application that is considered particularly important", §2.1): T3dheat's
// matvec segment against its reduction/barrier machinery.
func (s *Suite) ExtSegment() string {
	a := s.mustAnalysis("t3dheat")
	opts := model.DefaultOptions(s.Cfg.L2.SizeBytes)
	var b strings.Builder
	for _, seg := range []string{"matvec", "dot", "pcf_barrier"} {
		m, err := a.campaign.FitSegment(seg, opts)
		if err != nil {
			panic(err)
		}
		tb := table.New(fmt.Sprintf("segment %q — T3dheat", seg),
			"#procs", "#Base", "#L2Lim%", "#Sync%", "#Imb%")
		for _, bp := range m.Breakdown() {
			tb.Row(bp.Procs, bp.Base, pct(bp.L2Lim(), bp.Base), pct(bp.Sync, bp.Base), pct(bp.Imb, bp.Base))
		}
		b.WriteString(tb.String())
		b.WriteString("\n")
	}
	b.WriteString("The matvec segment is caching-space bound at low counts; the reduction and\nexplicit-barrier segments are synchronization bound at high counts — the\nwhole-application chart is the sum of very different per-segment stories.\n")
	return b.String()
}
