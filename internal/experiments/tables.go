package experiments

import (
	"fmt"
	"strings"

	"scaltool/internal/apps"
	"scaltool/internal/campaign"
	"scaltool/internal/machine"
	"scaltool/internal/perftools"
	"scaltool/internal/sim"
	"scaltool/internal/table"
)

// Table1 reproduces the resource-cost comparison for measuring execution
// time plus synchronization/spinning fractions at processor counts
// 1, 2, …, 2^(n−1). The paper's n=6 example: Scal-Tool needs about 50% of
// the processors and far fewer files.
func (s *Suite) Table1() string {
	var b strings.Builder
	tb := table.New("Resource needs for n processor-count points (1,2,4,…,2^(n-1))",
		"#n", "method", "#runs", "#processors", "#files")
	for _, n := range []int{2, 3, 4, 5, 6} {
		tt := perftools.TimeToolCost(n)
		ss := perftools.SpeedshopCost(n)
		ex := perftools.ExistingToolsCost(n)
		// The formula row: 2n−1 runs, 2^n+n−2 processors, 2n−1 files.
		st := perftools.ResourceCost{Runs: 2*n - 1, Processors: 1<<uint(n) + n - 2, Files: 2*n - 1}
		tb.Row(n, "time", tt.Runs, tt.Processors, tt.Files)
		tb.Row(n, "speedshop", ss.Runs, ss.Processors, ss.Files)
		tb.Row(n, "existing total", ex.Runs, ex.Processors, ex.Files)
		tb.Row(n, "Scal-Tool", st.Runs, st.Processors, st.Files)
	}
	b.WriteString(tb.String())
	// The actual planned campaigns (plans may add a couple of sizes above
	// s0 when the Table 3 fractions don't overflow the L2 — see DESIGN.md).
	tb2 := table.New("Planned campaign cost on this machine (n=6, 32 processors)",
		"app", "#runs", "#processors", "#files")
	for _, name := range PaperApps() {
		app, err := apps.ByName(name)
		if err != nil {
			panic(err)
		}
		plan, err := campaign.NewPlan(app, s.Cfg, s.MaxProcs, 0)
		if err != nil {
			panic(err)
		}
		c := plan.Cost()
		tb2.Row(name, c.Runs, c.Processors, c.Files)
	}
	b.WriteString("\n")
	b.WriteString(tb2.String())
	fmt.Fprintf(&b, "\nAt n=6 Scal-Tool uses %d processors vs %d for time+speedshop (%.0f%%).\n",
		1<<6+6-2, perftools.ExistingToolsCost(6).Processors,
		100*float64(1<<6+6-2)/float64(perftools.ExistingToolsCost(6).Processors))
	return b.String()
}

// Table2 reproduces the bottleneck taxonomy, with the effects demonstrated
// by simulator ground truth on a two-processor probe program.
func (s *Suite) Table2() string {
	var b strings.Builder
	tb := table.New("Bottlenecks that affect scalability and their effects",
		"bottleneck", "class", "effects")
	tb.Row("Insufficient caching space", "", "conflict (capacity+conflict) misses")
	tb.Row("Synchronization", "multiprocessor factor", "coherence misses + extra instructions")
	tb.Row("Load imbalance", "multiprocessor factor", "extra instructions (idle spinning)")
	tb.Row("True sharing", "multiprocessor factor", "coherence misses")
	tb.Row("False sharing", "multiprocessor factor", "coherence misses")
	b.WriteString(tb.String())

	// Demonstration: a probe exhibiting each effect, measured by the
	// simulator's ground-truth classification.
	cfg := s.Cfg
	prog, err := sim.NewProgram("table2-probe", 2, uint64(4*cfg.L2.SizeBytes), cfg.PageBytes)
	if err != nil {
		panic(err)
	}
	arr := prog.MustAlloc("a", uint64(4*cfg.L2.SizeBytes))
	half := arr.Size / 2
	init := prog.AddRegion("init")
	init.Proc(0).Write(arr.Base, half/8, 8, 1)
	init.Proc(1).Write(arr.Base+half, half/8, 8, 1)
	// Conflict misses: proc 0 re-sweeps its overflowing half twice.
	for i := 0; i < 2; i++ {
		reg := prog.AddRegion("conflict_sweep")
		reg.Proc(0).Read(arr.Base, half/8, 8, 1)
		// Imbalance: processor 1 stays idle.
	}
	// Sharing: proc 1 reads lines proc 0 wrote, then proc 0 rewrites them.
	sh := prog.AddRegion("share_read")
	sh.Proc(1).Read(arr.Base, 512, 8, 1)
	rw := prog.AddRegion("share_rewrite")
	rw.Proc(0).Write(arr.Base, 512, 8, 1)
	cohRead := prog.AddRegion("coherence_reread")
	cohRead.Proc(1).Read(arr.Base, 512, 8, 1)

	res, err := sim.Run(cfg, prog)
	if err != nil {
		panic(err)
	}
	g := res.Ground
	tb2 := table.New("Ground-truth effects on the two-processor probe",
		"effect", "#count")
	tb2.Row("compulsory misses", int(g.Compulsory))
	tb2.Row("conflict misses (insufficient caching space)", int(g.Conflict))
	tb2.Row("coherence misses (sharing + sync)", int(g.Coherence))
	tb2.Row("invalidations sent", int(g.Invalidations))
	tb2.Row("sync cycles", g.SyncCycles)
	tb2.Row("imbalance (spin) cycles", g.ImbCycles)
	b.WriteString("\n")
	b.WriteString(tb2.String())
	return b.String()
}

// Table3 reproduces the run matrix: base size at every processor count,
// fractional sizes on the uniprocessor.
func (s *Suite) Table3() string {
	app, err := apps.ByName("t3dheat")
	if err != nil {
		panic(err)
	}
	plan, err := campaign.NewPlan(app, s.Cfg, s.MaxProcs, 0)
	if err != nil {
		panic(err)
	}
	header := []string{"data set size"}
	for _, n := range plan.ProcCounts {
		header = append(header, fmt.Sprintf("#n=%d", n))
	}
	tb := table.New(fmt.Sprintf("Runs needed for %s (s0 = %d bytes)", plan.App, plan.S0), header...)
	mark := func(row []any, set map[int]bool) []any {
		for _, n := range plan.ProcCounts {
			if set[n] {
				row = append(row, "x")
			} else {
				row = append(row, "")
			}
		}
		return row
	}
	all := map[int]bool{}
	for _, n := range plan.ProcCounts {
		all[n] = true
	}
	tb.Row(mark([]any{"s0"}, all)...)
	for _, sz := range plan.UniSizes {
		label := fmt.Sprintf("%d", sz)
		if sz < plan.S0 {
			label = fmt.Sprintf("s0/%d", plan.S0/sz)
		} else if sz > plan.S0 {
			label = fmt.Sprintf("%.2g*s0 (t2/tm)", float64(sz)/float64(plan.S0))
		}
		tb.Row(mark([]any{label}, map[int]bool{1: true})...)
	}
	return tb.String()
}

// Table4 reproduces the application-characteristics table, with measured
// scalability and balance.
func (s *Suite) Table4() string {
	tb := table.New("Characteristics of the applications analyzed",
		"application", "what it does", "#speedup@16", "#speedup@32",
		"#balance(max/mean)", "#data set (bytes)", "parallel model")
	for _, name := range PaperApps() {
		a := s.mustAnalysis(name)
		sps := map[int]float64{}
		for _, sp := range a.model.Speedups() {
			sps[sp.Procs] = sp.Speedup
		}
		last := a.campaign.BaseRuns[s.MaxProcs]
		usage := perftools.Ssusage(last)
		tb.Row(name, a.app.Description(), sps[16], sps[s.MaxProcs],
			balanceMetric(last), int(usage.Bytes()), a.app.ParallelModel())
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nData-set sizes are the machine-scaled analogues of the paper's 40 / 10.3 / 16.2 MB\n(10x / 2.6x / 4x the per-processor L2). Balance is measured at the largest count.\n")
	return b.String()
}

var _ = machine.Config{}
