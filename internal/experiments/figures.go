package experiments

import (
	"fmt"
	"sort"
	"strings"

	"scaltool/internal/model"
	"scaltool/internal/perftools"
	"scaltool/internal/table"
)

// Fig2 reproduces the conceptual Figures 1/2: the execution-time components
// of one application (Swim) under real and estimated conditions — the Base
// curve, the curve with the caching-space effect removed, and the curve
// with the multiprocessor factors removed as well, with the shaded region
// split into synchronization and imbalance.
func (s *Suite) Fig2() string {
	a := s.mustAnalysis("swim")
	tb := table.New("Execution-time components, Swim (cycles accumulated over processors)",
		"#procs", "#Base (a)", "#Base-L2Lim (b)", "#Sync", "#Imb", "#Base-L2Lim-MP (c)")
	for _, bp := range a.model.Breakdown() {
		tb.Row(bp.Procs, bp.Base, bp.NoL2, bp.Sync, bp.Imb, bp.NoMP)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nCurve (a) is measured; (b) removes insufficient caching space; (c) further\nremoves the multiprocessor factors. The (b)-(c) gap splits into Sync and Imb.\n")
	return b.String()
}

// Fig3a reproduces the uniprocessor L2 hit-rate scan that locates the
// compulsory miss rate: the rate rises as the data set shrinks, peaks at
// s_max, and can dip again at the smallest sizes.
func (s *Suite) Fig3a() string {
	a := s.mustAnalysis("t3dheat")
	sc := table.NewSeries("L2hitr(s,1) — T3dheat uniprocessor scan", "data-set bytes", "local L2 hit rate")
	tb := table.New("", "#data-set bytes", "#L2 hit rate")
	for _, p := range a.model.HitRateScan() {
		sc.Point(fmt.Sprintf("%.0f", p.X), p.Y)
		tb.Row(int(p.X), p.Y)
	}
	var b strings.Builder
	b.WriteString(sc.String())
	b.WriteString("\n")
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\ncompulsory miss rate = %.4f at s_max = %.0f bytes\n", a.model.Compulsory, a.model.SMax)
	return b.String()
}

// Fig3b reproduces the estimated infinite-L2 hit rate against the measured
// multiprocessor hit rate: above it at low counts (conflict misses), and
// converging at high counts.
func (s *Suite) Fig3b() string {
	a := s.mustAnalysis("t3dheat")
	tb := table.New("L2hitr_inf(s0,n) vs measured L2hitr(s0,n) — T3dheat",
		"#procs", "#measured", "#infinite-L2", "#estimated Coh(s0,n)")
	for _, p := range a.model.InfiniteHitRates() {
		pe, _ := a.model.Point(p.Procs)
		tb.Row(p.Procs, p.Measured, p.Infinite, pe.Coh)
	}
	return tb.String()
}

// Fig4 reproduces the cpi(inf,inf) curve: the floor CPI after removing
// caching-space limits and multiprocessor factors, as a function of the
// processor count.
func (s *Suite) Fig4() string {
	a := s.mustAnalysis("t3dheat")
	tb := table.New("cpi(inf,inf)(s0,n) — T3dheat", "#procs", "#cpi(inf,inf)", "#tm(n)")
	for _, pe := range a.model.Points {
		tb.Row(pe.Procs, pe.CPIInfInf, pe.TmN)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nNote: with the MP-decontaminated tm(n) (DESIGN.md), tm's growth reflects only\nphysical distance; under first-touch placement most misses stay local, so the\ncurve rises more gently than the paper's Figure 4 sketch.\n")
	return b.String()
}

// SpeedupFig reproduces Figures 5/8/11: the measured speedup curve.
func (s *Suite) SpeedupFig(app string) string {
	a := s.mustAnalysis(app)
	sc := table.NewSeries(fmt.Sprintf("Speedup — %s", app), "processors", "speedup")
	tb := table.New("", "#procs", "#wall cycles", "#speedup")
	for _, sp := range a.model.Speedups() {
		sc.Point(fmt.Sprintf("n=%d", sp.Procs), sp.Speedup)
		tb.Row(sp.Procs, sp.Wall, sp.Speedup)
	}
	return sc.String() + "\n" + tb.String()
}

// BreakdownFig reproduces Figures 6/9/12: cycles accumulated over all
// processors, with the estimated effects subtracted curve by curve.
func (s *Suite) BreakdownFig(app string) string {
	a := s.mustAnalysis(app)
	tb := table.New(fmt.Sprintf("Scalability bottlenecks — %s (cycles accumulated over processors)", app),
		"#procs", "#Base", "#Base-L2Lim", "#Base-L2Lim-Sync", "#Base-L2Lim-Imb", "#Base-L2Lim-MP", "#L2Lim%", "#Sync%", "#Imb%")
	for _, bp := range a.model.Breakdown() {
		tb.Row(bp.Procs, bp.Base, bp.NoL2, bp.NoL2-bp.Sync, bp.NoL2-bp.Imb, bp.NoL2-bp.MP(),
			pct(bp.L2Lim(), bp.Base), pct(bp.Sync, bp.Base), pct(bp.Imb, bp.Base))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	switch app {
	case "t3dheat":
		b.WriteString("\nShape check: L2Lim dominates at n=1 and fades by 8-16 processors; past that the\nMP cost — mostly synchronization — grows until it dominates at 32 (paper: ~75%).\n")
	case "hydro2d":
		b.WriteString("\nShape check: L2Lim vanishes by 2-4 processors; load imbalance (the serial\nsections) dominates the MP cost throughout (paper Figure 9).\n")
	case "swim":
		b.WriteString("\nShape check: L2Lim is negligible past a few processors; imbalance dominates\nover synchronization (paper Figure 12).\n")
	}
	return b.String()
}

// ValidationFig reproduces Figures 7/10/13: the Base−MP curve as estimated
// by the model against the speedshop-measured one.
func (s *Suite) ValidationFig(app string) string {
	a := s.mustAnalysis(app)
	measured := a.campaign.MeasuredMP()
	tb := table.New(fmt.Sprintf("Validation — %s: Base−MP, model vs speedshop analogue", app),
		"#procs", "#Base", "#model MP", "#measured MP", "#model Base-MP", "#measured Base-MP", "#diff (% of Base)")
	procs := sortedProcs(a.campaign)
	var worst float64
	var worstN int
	for _, n := range procs {
		bp := breakdownAt(a, n)
		meas := measured[n]
		diff := 100 * (bp.MP() - meas) / bp.Base
		if abs(diff) > abs(worst) {
			worst, worstN = diff, n
		}
		tb.Row(n, bp.Base, bp.MP(), meas, bp.Base-bp.MP(), bp.Base-meas, diff)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nLargest divergence: %+.1f%% of accumulated cycles at %d processors", worst, worstN)
	switch app {
	case "hydro2d":
		b.WriteString(" (paper: 9% at 32).\n")
	case "swim":
		b.WriteString(" (paper: 14% at 32, from non-synchronization data sharing — here the\nsame sharing shows up mostly as a Sync-vs-Imb split error; see EXPERIMENTS.md).\n")
	default:
		b.WriteString(" (paper: \"remarkably similar\" curves).\n")
	}
	// Per-routine speedshop profile at the largest count (what the paper's
	// speedshop PC sampling reports).
	prof := perftools.Speedshop(a.campaign.BaseRuns[s.MaxProcs])
	tb2 := table.New(fmt.Sprintf("speedshop profile at %d processors", s.MaxProcs), "routine", "#cycles")
	tb2.Row("mp_barrier()+mp_lock_try() [sync]", prof.BarrierCycles)
	tb2.Row("mp_slave_wait_for_work() [imbalance]", prof.WaitCycles)
	rs := prof.Routines
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Cycles > rs[j].Cycles })
	for i, r := range rs {
		if i >= 6 {
			break
		}
		tb2.Row(r.Name, r.Cycles)
	}
	b.WriteString("\n")
	b.WriteString(tb2.String())
	return b.String()
}

// breakdownAt returns the breakdown point for a processor count.
func breakdownAt(a *appAnalysis, procs int) model.BreakdownPoint {
	for _, p := range a.model.Breakdown() {
		if p.Procs == procs {
			return p
		}
	}
	return model.BreakdownPoint{Procs: procs}
}

func pct(part, whole float64) float64 {
	if !(whole > 0) { // cycle totals are nonnegative; also rejects NaN
		return 0
	}
	return 100 * part / whole
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
