package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"scaltool/internal/machine"
)

// The shared test suite runs 16-processor campaigns (half the headline
// scale) so the whole test stays in CI budget; shape assertions hold at
// both scales.
var (
	tsOnce sync.Once
	ts     *Suite
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	if testing.Short() {
		t.Skip("campaign-scale experiments")
	}
	tsOnce.Do(func() { ts = NewSuite(machine.ScaledOrigin(), 16) })
	return ts
}

func TestAllExperimentsRun(t *testing.T) {
	s := testSuite(t)
	for _, e := range s.Experiments() {
		out, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(out) < 100 {
			t.Errorf("%s: suspiciously short output (%d bytes)", e.ID, len(out))
		}
	}
}

func TestByID(t *testing.T) {
	s := NewSuite(machine.ScaledOrigin(), 16)
	if _, err := s.ByID("fig6"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// The headline shape assertions of the paper's evaluation, checked against
// the fitted models (not just the printed text).

func TestShapeT3dheat(t *testing.T) {
	s := testSuite(t)
	a := s.mustAnalysis("t3dheat")
	bps := a.model.Breakdown()
	first, last := bps[0], bps[len(bps)-1]
	// Conflict misses dominate at n=1: L2Lim is a large share of Base and
	// removing it at least halves the time... the paper says "nearly
	// doubling", i.e. Base ≳ 2 × (Base − L2Lim).
	if ratio := first.Base / first.NoL2; ratio < 1.8 {
		t.Errorf("n=1 Base/NoL2 = %.2f, want ≥ 1.8 (paper: ~2)", ratio)
	}
	// L2Lim fades with processors.
	if last.L2Lim() > 0.15*first.L2Lim() {
		t.Errorf("L2Lim did not fade: %.3g → %.3g", first.L2Lim(), last.L2Lim())
	}
	// Synchronization dominates the MP cost at the top end.
	if last.Sync < last.Imb {
		t.Errorf("sync %.3g < imb %.3g at n=%d; T3dheat must be sync-bound", last.Sync, last.Imb, last.Procs)
	}
	if mp := last.MP() / last.Base; mp < 0.3 {
		t.Errorf("MP share at n=%d = %.0f%%, want large", last.Procs, 100*mp)
	}
}

func TestShapeHydro2d(t *testing.T) {
	s := testSuite(t)
	a := s.mustAnalysis("hydro2d")
	bps := a.model.Breakdown()
	last := bps[len(bps)-1]
	// Imbalance dominates (the serial sections).
	if last.Imb < 2*last.Sync {
		t.Errorf("imb %.3g vs sync %.3g at n=%d; want imbalance-dominated", last.Imb, last.Sync, last.Procs)
	}
	// L2Lim vanishes early (data set only ~2.6x the L2; the paper says
	// 2-3 processors, our caches clear it fully by 8).
	for _, bp := range bps {
		if bp.Procs >= 8 && bp.L2Lim() > 0.05*bp.Base {
			t.Errorf("n=%d: L2Lim still %.0f%% of Base", bp.Procs, 100*bp.L2Lim()/bp.Base)
		}
	}
	// Modest speedup.
	sps := a.model.Speedups()
	lastSp := sps[len(sps)-1]
	if lastSp.Speedup > 0.8*float64(lastSp.Procs) {
		t.Errorf("speedup(%d) = %.1f — not modest", lastSp.Procs, lastSp.Speedup)
	}
}

func TestShapeSwim(t *testing.T) {
	s := testSuite(t)
	a := s.mustAnalysis("swim")
	sps := a.model.Speedups()
	lastSp := sps[len(sps)-1]
	if lastSp.Speedup < 0.7*float64(lastSp.Procs) {
		t.Errorf("speedup(%d) = %.1f — paper has near-linear", lastSp.Procs, lastSp.Speedup)
	}
	bps := a.model.Breakdown()
	last := bps[len(bps)-1]
	if last.Imb <= last.Sync {
		t.Errorf("imb %.3g ≤ sync %.3g; Swim's MP is imbalance-dominated", last.Imb, last.Sync)
	}
}

func TestValidationWithinPaperBand(t *testing.T) {
	s := testSuite(t)
	for _, name := range PaperApps() {
		a := s.mustAnalysis(name)
		measured := a.campaign.MeasuredMP()
		for _, bp := range a.model.Breakdown() {
			diff := math.Abs(bp.MP()-measured[bp.Procs]) / bp.Base
			// The paper's own worst divergence is 14% of accumulated
			// cycles (Swim at 32).
			if diff > 0.14 {
				t.Errorf("%s n=%d: MP error %.0f%% of Base", name, bp.Procs, 100*diff)
			}
		}
	}
}

func TestSharingExtensionFlagsSwim(t *testing.T) {
	s := testSuite(t)
	aSwim := s.mustAnalysis("swim")
	aHydro := s.mustAnalysis("hydro2d")
	nMax := s.MaxProcs
	swim, _ := aSwim.model.Sharing(nMax)
	hydro, _ := aHydro.model.Sharing(nMax)
	// Swim's ntsync is polluted by its boundary sharing; Hydro2d's is not.
	if swim.NtSyncPollution == 0 {
		t.Error("swim pollution not detected")
	}
	if swim.FracSyncNtSync < 2*swim.FracSyncBarriers {
		t.Errorf("swim: ntsync %.4g vs barriers %.4g — want a clear gap", swim.FracSyncNtSync, swim.FracSyncBarriers)
	}
	if hydro.FracSyncBarriers > 0 &&
		hydro.FracSyncNtSync > 1.5*hydro.FracSyncBarriers {
		t.Errorf("hydro2d: methods diverge (%.4g vs %.4g) despite no sharing", hydro.FracSyncNtSync, hydro.FracSyncBarriers)
	}
}

func TestRawTmAblationShowsInflation(t *testing.T) {
	s := testSuite(t)
	out := s.AblationRawTm()
	if !strings.Contains(out, "tm(n) ablation") {
		t.Fatal("missing ablation output")
	}
	// Quantitative check: raw tm at the top count must exceed the
	// decontaminated estimate substantially for hydro2d.
	a := s.mustAnalysis("hydro2d")
	raw, err := a.campaign.Fit(modelOptionsRaw(s))
	if err != nil {
		t.Fatal(err)
	}
	pe := a.model.Points[len(a.model.Points)-1]
	rpe := raw.Points[len(raw.Points)-1]
	if rpe.TmN < 2*pe.TmN {
		t.Errorf("raw tm(%d) = %.0f vs decon %.0f — expected ≥ 2x inflation", rpe.Procs, rpe.TmN, pe.TmN)
	}
}

func TestPlacementAblationOrdering(t *testing.T) {
	s := testSuite(t)
	out := s.AblationPlacement()
	if !strings.Contains(out, "first-touch") {
		t.Fatal("missing placement output")
	}
}
