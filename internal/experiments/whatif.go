package experiments

import (
	"fmt"
	"strings"

	"scaltool/internal/apps"
	"scaltool/internal/counters"
	"scaltool/internal/sim"
	"scaltool/internal/table"
	"scaltool/internal/whatif"
)

// Sec26 reproduces the §2.6 parameter experiments: the model predicts the
// impact of machine changes without re-running the application, and — an
// advantage of having a simulator underneath — the L2-doubling prediction
// is cross-checked against an actual re-simulation with a doubled L2.
func (s *Suite) Sec26() string {
	a := s.mustAnalysis("t3dheat")
	var b strings.Builder

	scenarios := []whatif.Scenario{
		whatif.DoubleL2(),
		whatif.FasterMemory(),
		whatif.FasterSync(),
		whatif.WiderIssue(),
	}
	for _, sc := range scenarios {
		preds, err := whatif.Evaluate(a.model, sc)
		if err != nil {
			panic(err)
		}
		tb := table.New(fmt.Sprintf("what-if %q — T3dheat (no re-run)", sc.Name),
			"#procs", "#baseline cycles", "#predicted cycles", "#speedup", "#L2 miss rate", "#new L2 miss rate")
		for _, p := range preds {
			tb.Row(p.Procs, p.BaselineCycles, p.NewCycles, p.SpeedupVsBaseline(), p.L2MissRate, p.NewL2MissRate)
		}
		b.WriteString(tb.String())
		b.WriteString("\n")
	}

	// Cross-check: the model's double-L2 estimate vs a real re-simulation
	// on a machine with a doubled L2 (something the paper could not do).
	preds, err := whatif.Evaluate(a.model, whatif.DoubleL2())
	if err != nil {
		panic(err)
	}
	bigCfg := s.Cfg.WithL2Size(2 * s.Cfg.L2.SizeBytes)
	app, err := apps.ByName("t3dheat")
	if err != nil {
		panic(err)
	}
	tb := table.New("cross-check: predicted vs re-simulated cycles with a 2x L2",
		"#procs", "#predicted", "#re-simulated", "#pred/actual")
	for _, p := range preds {
		prog, err := app.Build(bigCfg, p.Procs, a.model.S0)
		if err != nil {
			panic(err)
		}
		res, err := sim.Run(bigCfg, prog)
		if err != nil {
			panic(err)
		}
		actual := counters.ToFloat(res.Report.TotalCycles())
		tb.Row(p.Procs, p.NewCycles, actual, p.NewCycles/actual)
	}
	b.WriteString(tb.String())
	b.WriteString("\nThe estimate is the paper's \"rough\" one (Eq. 11): it assumes the coherence\ncomponent is cache-size independent and maps cache growth to data-set shrinkage.\n")

	// Capacity-planning sweep: how much cache is enough, per processor count?
	sweep, err := whatif.SweepL2(a.model, []float64{0.5, 1, 2, 4, 8})
	if err != nil {
		panic(err)
	}
	ts := table.New("L2-size sweep — predicted speedup vs today (T3dheat)",
		"#procs", "#k=0.5", "#k=1", "#k=2", "#k=4", "#k=8")
	for i := range sweep[0].Predictions {
		row := []any{sweep[0].Predictions[i].Procs}
		for _, sp := range sweep {
			row = append(row, sp.Predictions[i].SpeedupVsBaseline())
		}
		ts.Row(row...)
	}
	b.WriteString("\n")
	b.WriteString(ts.String())
	return b.String()
}
