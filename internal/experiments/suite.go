// Package experiments regenerates every table and figure of the paper's
// evaluation, in text form. cmd/experiments prints them all (the source of
// EXPERIMENTS.md); the repository-root benchmarks run them one at a time.
//
// Numbers are produced by full Table 3 campaigns on the simulated machine;
// the *shapes* — who wins, by roughly what factor, where effects vanish —
// are the reproduction targets, not the paper's absolute cycle counts
// (the substrate here is a scaled simulator, not the authors' Origin 2000).
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"scaltool/internal/apps"
	"scaltool/internal/campaign"
	"scaltool/internal/machine"
	"scaltool/internal/model"
	"scaltool/internal/perftools"
	"scaltool/internal/sim"
)

// Suite runs and caches the campaigns behind the experiments.
type Suite struct {
	Cfg      machine.Config
	MaxProcs int
	Workers  int

	mu       sync.Mutex
	analyses map[string]*appAnalysis
}

// appAnalysis is one application's campaign + fitted model.
type appAnalysis struct {
	app      apps.App
	campaign *campaign.Result
	model    *model.Model
}

// NewSuite creates a suite on the given machine. maxProcs must be a power
// of two (the paper evaluates up to 32).
func NewSuite(cfg machine.Config, maxProcs int) *Suite {
	return &Suite{Cfg: cfg, MaxProcs: maxProcs, analyses: map[string]*appAnalysis{}}
}

// DefaultSuite returns the standard experiment setup: the scaled Origin at
// 32 processors.
func DefaultSuite() *Suite { return NewSuite(machine.ScaledOrigin(), 32) }

// PaperApps lists the paper's three applications in presentation order.
func PaperApps() []string { return []string{"t3dheat", "hydro2d", "swim"} }

// analysis lazily runs the campaign + fit for an application.
func (s *Suite) analysis(name string) (*appAnalysis, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.analyses[name]; ok {
		return a, nil
	}
	app, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	plan, err := campaign.NewPlan(app, s.Cfg, s.MaxProcs, 0)
	if err != nil {
		return nil, err
	}
	rn := &campaign.Runner{Cfg: s.Cfg, Workers: s.Workers}
	res, err := rn.Run(app, plan)
	if err != nil {
		return nil, fmt.Errorf("experiments: campaign %s: %w", name, err)
	}
	m, err := res.Fit(model.DefaultOptions(s.Cfg.L2.SizeBytes))
	if err != nil {
		return nil, fmt.Errorf("experiments: fit %s: %w", name, err)
	}
	a := &appAnalysis{app: app, campaign: res, model: m}
	s.analyses[name] = a
	return a, nil
}

// mustAnalysis panics on error; the experiments are all-or-nothing.
func (s *Suite) mustAnalysis(name string) *appAnalysis {
	a, err := s.analysis(name)
	if err != nil {
		panic(err)
	}
	return a
}

// Experiment names in paper order, mapped to their generators.
type Experiment struct {
	ID   string // "table1", "fig6", ...
	Name string
	Run  func() (string, error)
}

// Experiments returns every reproduction in paper order.
func (s *Suite) Experiments() []Experiment {
	wrap := func(f func() string) func() (string, error) {
		return func() (out string, err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("experiment failed: %v", r)
				}
			}()
			return f(), nil
		}
	}
	return []Experiment{
		{"table1", "Table 1 — resource needs: existing tools vs Scal-Tool", wrap(s.Table1)},
		{"table2", "Table 2 — bottlenecks and their effects", wrap(s.Table2)},
		{"table3", "Table 3 — the measurement-run matrix", wrap(s.Table3)},
		{"table4", "Table 4 — application characteristics", wrap(s.Table4)},
		{"fig2", "Figures 1/2 — breakdown concept (execution-time components)", wrap(s.Fig2)},
		{"fig3a", "Figure 3a — uniprocessor L2 hit rate vs data-set size", wrap(s.Fig3a)},
		{"fig3b", "Figure 3b — infinite-L2 vs measured hit rate", wrap(s.Fig3b)},
		{"fig4", "Figure 4 — cpi(inf,inf) vs processor count", wrap(s.Fig4)},
		{"fig5", "Figure 5 — T3dheat speedup", wrap(func() string { return s.SpeedupFig("t3dheat") })},
		{"fig6", "Figure 6 — T3dheat scalability bottlenecks", wrap(func() string { return s.BreakdownFig("t3dheat") })},
		{"fig7", "Figure 7 — T3dheat validation (model vs speedshop)", wrap(func() string { return s.ValidationFig("t3dheat") })},
		{"fig8", "Figure 8 — Hydro2d speedup", wrap(func() string { return s.SpeedupFig("hydro2d") })},
		{"fig9", "Figure 9 — Hydro2d scalability bottlenecks", wrap(func() string { return s.BreakdownFig("hydro2d") })},
		{"fig10", "Figure 10 — Hydro2d validation (model vs speedshop)", wrap(func() string { return s.ValidationFig("hydro2d") })},
		{"fig11", "Figure 11 — Swim speedup", wrap(func() string { return s.SpeedupFig("swim") })},
		{"fig12", "Figure 12 — Swim scalability bottlenecks", wrap(func() string { return s.BreakdownFig("swim") })},
		{"fig13", "Figure 13 — Swim validation (model vs speedshop)", wrap(func() string { return s.ValidationFig("swim") })},
		{"sec26", "Section 2.6 — what-if machine-parameter studies", wrap(s.Sec26)},
		{"ext-sharing", "Extension — true/false-sharing estimate (the paper's §6 future work)", wrap(s.ExtSharing)},
		{"ext-segment", "Extension — per-segment analysis (§2.1's \"segment of the application\")", wrap(s.ExtSegment)},
		{"abl-rawtm", "Ablation — MP-decontaminated vs raw Eq. 1 tm(n)", wrap(s.AblationRawTm)},
		{"abl-placement", "Ablation — page placement policies", wrap(s.AblationPlacement)},
		{"abl-mux", "Ablation — 2-counter multiplexed measurement", wrap(s.AblationMux)},
		{"abl-protocol", "Ablation — Illinois vs MSI coherence protocol (ntsync dependence)", wrap(s.AblationProtocol)},
	}
}

// RunAll writes every experiment to w.
func (s *Suite) RunAll(w io.Writer) error {
	for _, e := range s.Experiments() {
		fmt.Fprintf(w, "## %s\n\n", e.Name)
		out, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w, out)
	}
	return nil
}

// ByID returns one experiment.
func (s *Suite) ByID(id string) (Experiment, error) {
	for _, e := range s.Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q", id)
}

// sortedProcs returns the campaign's processor counts ascending.
func sortedProcs(res *campaign.Result) []int {
	out := make([]int, 0, len(res.BaseRuns))
	for n := range res.BaseRuns {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// balanceMetric reports max/mean busy cycles across processors at the
// largest count — 1.00 is perfect balance.
func balanceMetric(res *sim.Result) float64 {
	var sum, max float64
	for _, b := range res.Ground.PerProcBusy {
		sum += b
		if b > max {
			max = b
		}
	}
	if !(sum > 0) { // busy-cycle sums are nonnegative; also rejects NaN
		return 0
	}
	return max / (sum / float64(len(res.Ground.PerProcBusy)))
}

var _ = perftools.Speedshop // used by figures.go

// modelOptionsRaw returns the paper-faithful (single-pass tm) fit options
// for the suite's machine.
func modelOptionsRaw(s *Suite) model.Options {
	o := model.DefaultOptions(s.Cfg.L2.SizeBytes)
	o.RawTmN = true
	return o
}
