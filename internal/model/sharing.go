package model

import "scaltool/internal/counters"

// This file implements two things the paper describes but does not fully
// develop:
//
//   - the *first* frac_sync method of §2.4.2 — instrument the application to
//     count barriers (and locks) at run time and charge each a known cost —
//     as a cross-check for the ntsync counter method the paper actually
//     uses; and
//
//   - the paper's stated future work (§6): "extending Scal-Tool to
//     incorporate the effect of true and false sharing". The estimate uses
//     only counter-visible quantities: the coherence miss rate Coh(s0,n)
//     estimated in §2.4.1 gives the total coherence misses; the instrumented
//     barrier count gives the synchronization-induced share (one release
//     miss per barrier per processor); the remainder is data sharing, and
//     the same events are exactly the ones that pollute ntsync — so the
//     estimate also quantifies how far the ntsync method overstates
//     frac_sync for sharing-heavy codes like Swim (the paper's §4.3 caveat).

// FracSyncFromBarriers returns the §2.4.2 method-1 estimate of frac_sync at
// a processor count: barrier participations × (cpi0 + tsync(n)) cycles,
// expressed as an instruction fraction against cpi_sync(n). The second
// result is false when the processor count was not measured.
func (m *Model) FracSyncFromBarriers(procs int) (float64, bool) {
	pe, ok := m.Point(procs)
	if !ok {
		return 0, false
	}
	if procs == 1 || pe.Meas.Instr == 0 || pe.CpiSync <= 0 {
		return 0, true
	}
	// Every processor participates in every barrier; each lock
	// acquire/release pair costs about the same fetchop round trip.
	events := counters.ToFloat(pe.Meas.Barriers)*float64(procs) + counters.ToFloat(pe.Meas.Locks)
	ost := events * (m.CPI0 + pe.TSync)
	f := ost / (pe.CpiSync * counters.ToFloat(pe.Meas.Instr))
	if f < 0 {
		f = 0
	}
	if f > 0.95 {
		f = 0.95
	}
	return f, true
}

// SharingEstimate quantifies true/false data sharing at one processor
// count, from counters alone.
type SharingEstimate struct {
	Procs int

	// CoherenceMisses is the estimated total coherence misses:
	// Coh(s0,n) × L1 misses.
	CoherenceMisses float64
	// SyncInduced is the barrier-release share (one per barrier per
	// processor).
	SyncInduced float64
	// DataMisses is the remainder — misses caused by true/false sharing.
	DataMisses float64
	// Cycles estimates the sharing cost: DataMisses × tm(n).
	Cycles float64

	// NtSyncPollution counts the store-to-shared events beyond the
	// synchronization ones — the upgrades data sharing generates, which
	// inflate the ntsync frac_sync estimate (§4.3).
	NtSyncPollution uint64
	// FracSyncNtSync and FracSyncBarriers compare the two §2.4.2 methods;
	// a large gap flags sharing-polluted ntsync.
	FracSyncNtSync   float64
	FracSyncBarriers float64
}

// Sharing estimates the data-sharing effect at a processor count (the
// paper's future-work extension). The second result is false when the
// count was not measured.
func (m *Model) Sharing(procs int) (SharingEstimate, bool) {
	pe, ok := m.Point(procs)
	if !ok {
		return SharingEstimate{}, false
	}
	b := pe.Meas
	est := SharingEstimate{Procs: procs, FracSyncNtSync: pe.FracSync}
	if procs == 1 {
		return est, true
	}
	l1Misses := (b.H2 + b.Hm) * counters.ToFloat(b.Instr)
	est.CoherenceMisses = pe.Coh * l1Misses
	est.SyncInduced = counters.ToFloat(b.Barriers) * float64(procs)
	est.DataMisses = est.CoherenceMisses - est.SyncInduced
	if est.DataMisses < 0 {
		est.DataMisses = 0
	}
	est.Cycles = est.DataMisses * pe.TmN

	syncEvents := uint64(b.Barriers)*uint64(procs) + b.Locks
	if b.NtSync > syncEvents {
		est.NtSyncPollution = b.NtSync - syncEvents
	}
	if f, ok := m.FracSyncFromBarriers(procs); ok {
		est.FracSyncBarriers = f
	}
	return est, true
}
