package model

import "scaltool/internal/counters"

// BreakdownPoint is one processor count of the Figure 6/9/12 charts. All
// quantities are cycles accumulated over every processor of the run ("the
// curves accumulate the cycles from all the processors", §4.1).
type BreakdownPoint struct {
	Procs int

	// Base is the measured cycles (the top curve).
	Base float64
	// NoL2 is Base with the insufficient-caching-space effect removed
	// (the paper's Base−L2Lim curve).
	NoL2 float64
	// Sync and Imb are the estimated synchronization and load-imbalance
	// effects.
	Sync float64
	Imb  float64
	// NoMP is Base with both the caching-space and all multiprocessor
	// effects removed (the bottom curve, Base−L2Lim−MP).
	NoMP float64

	// Interpolated flags that this point's coherence estimate rests on an
	// interpolated hit-rate sample (degraded input set) — plot it hollow.
	Interpolated bool
}

// L2Lim returns the estimated insufficient-caching-space cycles.
func (b BreakdownPoint) L2Lim() float64 { return b.Base - b.NoL2 }

// MP returns the total multiprocessor effect (Sync + Imb).
func (b BreakdownPoint) MP() float64 { return b.Sync + b.Imb }

// Breakdown computes the paper's cycle-breakdown curves for every measured
// processor count.
func (m *Model) Breakdown() []BreakdownPoint {
	out := make([]BreakdownPoint, 0, len(m.Points))
	for _, pe := range m.Points {
		inst := counters.ToFloat(pe.Meas.Instr)
		bp := BreakdownPoint{
			Procs:        pe.Procs,
			Base:         counters.ToFloat(pe.Meas.Cycles),
			NoL2:         pe.CPIInf * inst,
			Sync:         pe.CpiSync * pe.FracSync * inst,
			Imb:          m.CpiImb * pe.FracImb * inst,
			Interpolated: pe.CohInterpolated,
		}
		bp.NoMP = pe.CPIInfInf * (1 - pe.FracSync - pe.FracImb) * inst
		out = append(out, bp)
	}
	return out
}

// SpeedupPoint is one point of the measured speedup curve (Figures 5/8/11).
type SpeedupPoint struct {
	Procs   int
	Wall    float64
	Speedup float64
}

// Speedups returns the measured speedup curve from the base runs.
func (m *Model) Speedups() []SpeedupPoint {
	out := make([]SpeedupPoint, 0, len(m.Points))
	var wall1 float64
	for _, pe := range m.Points {
		if pe.Procs == 1 {
			wall1 = counters.ToFloat(pe.Meas.Wall)
		}
	}
	for _, pe := range m.Points {
		sp := SpeedupPoint{Procs: pe.Procs, Wall: counters.ToFloat(pe.Meas.Wall)}
		if sp.Wall > 0 && wall1 > 0 {
			sp.Speedup = wall1 / sp.Wall
		}
		out = append(out, sp)
	}
	return out
}

// InfHitRatePoint is one point of Figure 3b: the estimated infinite-L2 hit
// rate against the measured multiprocessor hit rate.
type InfHitRatePoint struct {
	Procs    int
	Measured float64 // L2hitr(s0, n)
	Infinite float64 // L2hitr∞(s0, n)
}

// InfiniteHitRates returns the Figure 3b series.
func (m *Model) InfiniteHitRates() []InfHitRatePoint {
	out := make([]InfHitRatePoint, 0, len(m.Points))
	for _, pe := range m.Points {
		out = append(out, InfHitRatePoint{Procs: pe.Procs, Measured: pe.Meas.L2HitRate, Infinite: pe.L2HitInf})
	}
	return out
}

// CPIInfInfCurve returns the Figure 4 series: cpi∞,∞(s0, n) versus the
// processor count. It typically rises with n because tm(n) rises.
func (m *Model) CPIInfInfCurve() []SpeedupPoint {
	out := make([]SpeedupPoint, 0, len(m.Points))
	for _, pe := range m.Points {
		out = append(out, SpeedupPoint{Procs: pe.Procs, Wall: pe.CPIInfInf})
	}
	return out
}
