package model

import (
	"fmt"
	"math"
	"sort"

	"scaltool/internal/counters"
	"scaltool/internal/stats"
)

// PointEstimate holds the model's per-processor-count quantities for the
// base data-set size s0.
type PointEstimate struct {
	Procs int
	Meas  Measurement // the base run the estimates derive from

	TmN float64 // tm(n): main-memory penalty at this machine size

	Coh float64 // estimated coherence miss rate, Coh(s0, n)
	// CohInterpolated flags that the hit-rate curve had no measured sample
	// near s0/n, so Coh rests on interpolation across a gap (a degraded
	// input set).
	CohInterpolated bool

	L2HitInf      float64 // L2hitr∞(s0, n): infinite-L2 hit rate
	CPIInf        float64 // cpi∞(s0, n): CPI without caching-space limits (Eq. 8)
	L1HitInfInf   float64 // L1hitr(s0/n, 1)
	MemFracInfInf float64 // m(s0/n, 1)
	CPIInfInf     float64 // cpi∞,∞(s0, n): CPI without cache limits or MP factors

	CpiSync float64 // cpi_sync(n) from the barrier kernel
	TSync   float64 // tsync(n): fetchop latency estimate

	FracSync float64 // fraction of instructions due to synchronization
	FracImb  float64 // fraction of instructions due to imbalance spinning

	// ImbDegenerate flags that cpi_imb ≈ cpi∞,∞ made Eq. 9 ill-conditioned
	// and FracImb was zeroed.
	ImbDegenerate bool
}

// Model is the fitted scalability model for one application on one machine.
type Model struct {
	Opts Options
	S0   uint64 // base data-set size

	CPI0Initial float64 // Lubeck's small-data-set estimate (biased)
	CPI0        float64 // the paper's unbiased estimator (Eq. 2)
	T2          float64 // L2-hit penalty beyond cpi0
	Tm1         float64 // memory penalty on the uniprocessor
	FitRMSE     float64 // residual of the t2/tm least squares
	FitR2       float64 // coefficient of determination of the t2/tm fit over the overflowing sizes
	FitSizes    int     // number of L2-overflowing sizes the fit used
	TSync1      float64 // per-barrier overhead on one processor (used to decontaminate small uniproc runs)

	Compulsory float64 // compulsory miss rate (1 − peak of Fig. 3a)
	SMax       float64 // data-set size at the hit-rate peak

	CpiImb float64 // spin-loop CPI from the spin kernel

	Points []PointEstimate // ascending by processor count; Points[0].Procs == 1

	// Degradation records what the fit had to do without (missing sizes,
	// missing processor counts, interpolated coherence points, dropped
	// runs). Its zero value means the input set was complete.
	Degradation Degradation

	hitCurve *stats.Interpolator // L2hitr(s, 1)
	l1Curve  *stats.Interpolator // L1hitr(s, 1)
	mCurve   *stats.Interpolator // m(s, 1)
}

// fitModel is the uninstrumented fit, following §2.2–2.4. Fit and FitContext
// (fit.go) wrap it with the public API and observability.
func fitModel(in Inputs, opt Options) (*Model, error) {
	if opt.OverflowFactor <= 0 {
		opt.OverflowFactor = 1.5
	}
	if err := in.validate(opt); err != nil {
		return nil, err
	}
	base := sortedByProcs(in.Base)
	uni := sortedBySize(in.Uniproc)
	s0 := base[0].DataBytes

	m := &Model{Opts: opt, S0: s0, CpiImb: in.SpinCPI}

	// Uniprocessor curves vs data-set size (Fig. 3a and the s0/n rules).
	var hitPts, l1Pts, mPts []stats.Point
	for _, u := range uni {
		x := counters.ToFloat(u.DataBytes)
		hitPts = append(hitPts, stats.Point{X: x, Y: u.L2HitRate})
		l1Pts = append(l1Pts, stats.Point{X: x, Y: u.L1HitRate})
		mPts = append(mPts, stats.Point{X: x, Y: u.MemFrac})
	}
	var err error
	if m.hitCurve, err = stats.NewInterpolator(hitPts); err != nil {
		return nil, err
	}
	if m.l1Curve, err = stats.NewInterpolator(l1Pts); err != nil {
		return nil, err
	}
	if m.mCurve, err = stats.NewInterpolator(mPts); err != nil {
		return nil, err
	}

	// Per-barrier uniprocessor overhead, bootstrapped from the 1-processor
	// sync kernel. At the simulated scale the small uniprocessor runs do
	// little work per barrier, so their CPI is contaminated by the
	// fetchop/entry cost of the barrier at every region end; the kernel
	// measures that cost directly, and subtracting it restores Lubeck's
	// assumption that the small run's CPI ≈ cpi0 (+ miss terms that Eq. 2
	// strips). On the paper's full-size runs this correction is negligible.
	small := uni[0]
	if k1, ok := in.SyncKernel[1]; ok && k1.Barriers > 0 && k1.Instr > 0 {
		guess := small.CPI
		for i := 0; i < 2; i++ {
			ts := (counters.ToFloat(k1.Cycles) - guess*counters.ToFloat(k1.Instr)) / counters.ToFloat(k1.Barriers)
			if ts < 0 {
				ts = 0
			}
			m.TSync1 = ts
			if c := (counters.ToFloat(small.Cycles) - counters.ToFloat(small.Barriers)*ts) / counters.ToFloat(small.Instr); c > 0 {
				guess = c
			}
		}
	}
	// corrCPI is a uniprocessor run's CPI with the barrier overhead removed.
	corrCPI := func(u Measurement) float64 {
		if u.Instr == 0 {
			return u.CPI
		}
		c := (counters.ToFloat(u.Cycles) - counters.ToFloat(u.Barriers)*m.TSync1) / counters.ToFloat(u.Instr)
		if c <= 0 {
			return u.CPI
		}
		return c
	}

	// §2.2 — cpi0, Lubeck initial estimate: the smallest uniprocessor run.
	m.CPI0Initial = corrCPI(small)

	// §2.3 — t2 and tm. The paper jointly least-squares Eq. 3 over
	// L2-overflowing sizes; on fully-overflowing runs h2 and hm are nearly
	// collinear, so we first estimate t2 from the L2-*fitting* sizes
	// (where hm ≈ 0 and h2 dominates) and then tm from the overflowing
	// sizes given t2, iterating to a joint fixed point. When no L2-fitting
	// sizes exist the paper's joint fit is used directly.
	overflowAt := uint64(opt.OverflowFactor * float64(opt.L2Bytes))
	midAt := uint64(0.75 * float64(opt.L2Bytes))
	fit := func(cpi0 float64) (t2, tm, rmse float64, err error) {
		m.FitSizes = 0
		var mid, over []Measurement
		for _, u := range uni {
			switch {
			case u.DataBytes >= overflowAt:
				over = append(over, u)
			case u.DataBytes <= midAt && u.H2 > 1e-9:
				mid = append(mid, u)
			}
		}
		if len(over) < 2 {
			return 0, 0, 0, in.insufficient("model: only %d uniproc runs overflow the L2 (threshold %d bytes); need ≥ 2 for the t2/tm least squares",
				len(over), overflowAt)
		}
		// A measurement set with essentially no cache misses (e.g. a
		// compute/barrier-only segment) cannot identify t2/tm — and does
		// not need them: the miss terms of Eq. 1 are zero.
		maxMiss := 0.0
		for _, u := range uni {
			if v := u.H2 + u.Hm; v > maxMiss {
				maxMiss = v
			}
		}
		if maxMiss < 1e-7 {
			m.FitSizes = len(over)
			m.FitR2 = 1
			return 0, 0, 0, nil
		}
		solve1 := func(ms []Measurement, x func(Measurement) float64, y func(Measurement) float64) float64 {
			var num, den float64
			for _, u := range ms {
				num += x(u) * y(u)
				den += x(u) * x(u)
			}
			if !(den > 0) { // den is a sum of squares; also rejects NaN
				return 0
			}
			return num / den
		}
		if len(mid) == 0 {
			rows := make([][]float64, len(over))
			ys := make([]float64, len(over))
			for i, u := range over {
				rows[i] = []float64{u.H2, u.Hm}
				ys[i] = corrCPI(u) - cpi0
			}
			beta, err := stats.LeastSquares(rows, ys)
			if err != nil {
				return 0, 0, 0, fmt.Errorf("model: t2/tm joint fit: %w", err)
			}
			t2, tm = beta[0], beta[1]
		} else {
			for i := 0; i < 3; i++ {
				tm = solve1(over, func(u Measurement) float64 { return u.Hm },
					func(u Measurement) float64 { return corrCPI(u) - cpi0 - u.H2*t2 })
				t2 = solve1(mid, func(u Measurement) float64 { return u.H2 },
					func(u Measurement) float64 { return corrCPI(u) - cpi0 - u.Hm*tm })
				if t2 < 0 {
					t2 = 0
				}
			}
		}
		if t2 < 0 {
			t2 = 0
		}
		if tm < 0 {
			return 0, 0, 0, fmt.Errorf("model: fitted tm = %.2f < 0 (inconsistent inputs)", tm)
		}
		var sq, sy, syy float64
		for _, u := range over {
			r := corrCPI(u) - cpi0 - u.H2*t2 - u.Hm*tm
			sq += r * r
			y := corrCPI(u) - cpi0
			sy += y
			syy += y * y
		}
		rmse = math.Sqrt(sq / float64(len(over)))
		m.FitSizes = len(over)
		if sst := syy - sy*sy/float64(len(over)); sst > 1e-12 {
			m.FitR2 = 1 - sq/sst
		} else {
			m.FitR2 = 1 // degenerate: no variance to explain
		}
		return t2, tm, rmse, nil
	}
	if m.T2, m.Tm1, m.FitRMSE, err = fit(m.CPI0Initial); err != nil {
		return nil, err
	}

	// §2.2 — the unbiased adjustment (Eq. 2): strip the compulsory-miss
	// cycles present in the small run.
	m.CPI0 = m.CPI0Initial - small.H2*m.T2 - small.Hm*m.Tm1
	if m.CPI0 <= 0 {
		return nil, fmt.Errorf("model: adjusted cpi0 = %.4f ≤ 0 (inconsistent inputs)", m.CPI0)
	}
	if opt.Refit {
		if m.T2, m.Tm1, m.FitRMSE, err = fit(m.CPI0); err != nil {
			return nil, err
		}
	}

	// §2.4.1 — compulsory miss rate: the peak of the uniprocessor hit-rate
	// scan (Fig. 3a).
	peak := m.hitCurve.ArgMaxY()
	m.Compulsory = stats.Clamp(1-peak.Y, 0, 1)
	m.SMax = peak.X

	// Sync-kernel curves, keyed by processor count.
	kernProcs := make([]int, 0, len(in.SyncKernel))
	for p := range in.SyncKernel {
		kernProcs = append(kernProcs, p)
	}
	sort.Ints(kernProcs)
	var cpiSyncPts, tsyncPts []stats.Point
	for _, p := range kernProcs {
		k := in.SyncKernel[p]
		if k.Barriers == 0 || k.Instr == 0 {
			return nil, fmt.Errorf("model: sync kernel at %d procs has no barriers/instructions", p)
		}
		cpiSyncPts = append(cpiSyncPts, stats.Point{X: float64(p), Y: k.CPI})
		// tsync: per-processor kernel cycles beyond the base instruction
		// cost, per barrier (§2.4.2, "proceeding like we did to calculate
		// tm").
		perProcCycles := counters.ToFloat(k.Cycles) / float64(k.Procs)
		perProcInstr := counters.ToFloat(k.Instr) / float64(k.Procs)
		ts := (perProcCycles - m.CPI0*perProcInstr) / counters.ToFloat(k.Barriers)
		if ts < 0 {
			ts = 0
		}
		tsyncPts = append(tsyncPts, stats.Point{X: float64(p), Y: ts})
	}
	cpiSyncCurve, err := stats.NewInterpolator(cpiSyncPts)
	if err != nil {
		return nil, err
	}
	tsyncCurve, err := stats.NewInterpolator(tsyncPts)
	if err != nil {
		return nil, err
	}

	// §2.3/§2.4 — per-processor-count estimates.
	for _, b := range base {
		pe := PointEstimate{Procs: b.Procs, Meas: b}

		// tm(n) from Eq. 1 with cpi0 and t2 known. Synchronization and
		// spin cycles flow through Eq. 1 into tm(n) (they are cycles the
		// equation can only attribute to the hm term); rawTm is therefore
		// an upper bound. Unless Options.RawTmN keeps the paper's
		// single-pass estimate, the loop below iteratively removes the
		// estimated MP cycles and instructions — including the one
		// release-flag miss per barrier per processor — and re-solves
		// Eq. 1, converging to an MP-decontaminated tm(n).
		rawTm := m.Tm1
		if b.Hm > 1e-12 {
			if v := (b.CPI - m.CPI0 - b.H2*m.T2) / b.Hm; v > 0 {
				rawTm = v
			}
		}
		if rawTm < m.Tm1 {
			rawTm = m.Tm1
		}
		pe.TmN = rawTm

		sOverN := float64(s0) / float64(b.Procs)

		// Quantities independent of tm(n). Coh reads the uniprocessor
		// hit-rate curve at s0/n; with a degraded input set there may be no
		// measured sample near that size, and the flag records that the
		// estimate rests on interpolation across the gap.
		pe.Coh = stats.Clamp(m.hitCurve.At(sOverN)-b.L2HitRate, 0, 1)
		pe.CohInterpolated = b.Procs > 1 && !hasSampleNear(uni, sOverN)
		pe.L2HitInf = stats.Clamp(1-m.Compulsory-pe.Coh, 0, 1)
		pe.L1HitInfInf = m.l1Curve.At(sOverN)
		pe.MemFracInfInf = m.mCurve.At(sOverN)
		l2InfInf := stats.Clamp(1-m.Compulsory, 0, 1)
		pe.CpiSync = cpiSyncCurve.At(float64(b.Procs))
		pe.TSync = tsyncCurve.At(float64(b.Procs))
		if b.Procs > 1 {
			// Eq. 10: ostsync = ntsync · (cpi0 + tsync); then
			// frac_sync = ostsync / (cpi_sync · instructions).
			ostsync := counters.ToFloat(b.NtSync) * (m.CPI0 + pe.TSync)
			if pe.CpiSync > 0 && b.Instr > 0 {
				pe.FracSync = stats.Clamp(ostsync/(pe.CpiSync*counters.ToFloat(b.Instr)), 0, 0.95)
			}
		}

		// finish computes the tm-dependent quantities for a candidate
		// (tm, fi) pair. cpi∞ is the CPI with the conflict misses' cycles
		// removed — algebraically identical to Eq. 8 when tm is the raw
		// Eq. 1 solution, and exact under a decontaminated tm.
		hmInfOf := func() float64 {
			return (1 - b.L1HitRate) * b.MemFrac * (1 - pe.L2HitInf)
		}
		// Removing a conflict miss converts it into an L2 hit, so each
		// removed miss saves (tm − t2) cycles, not tm — this subtraction is
		// algebraically identical to Eq. 8 at the raw Eq. 1 tm(n).
		finish := func(tm, fi float64) {
			pe.TmN = tm
			pe.FracImb = fi
			pe.CPIInf = b.CPI - math.Max(b.Hm-hmInfOf(), 0)*math.Max(tm-m.T2, 0)
			pe.CPIInfInf = eq8(m.CPI0, pe.L1HitInfInf, pe.MemFracInfInf, m.T2, tm, l2InfInf)
		}

		if opt.RawTmN || b.Procs == 1 || b.Hm <= 1e-12 {
			finish(rawTm, 0)
			if b.Procs > 1 {
				// Paper-faithful closed form: Eq. 9 solved for frac_imb
				// at the raw tm(n).
				denom := m.CpiImb - pe.CPIInfInf
				if math.Abs(denom) < 1e-3 {
					pe.ImbDegenerate = true
				} else {
					fi := (pe.CPIInf - pe.CPIInfInf - pe.FracSync*(pe.CpiSync-pe.CPIInfInf)) / denom
					pe.FracImb = stats.Clamp(fi, 0, 0.95-pe.FracSync)
				}
			}
			m.Points = append(m.Points, pe)
			continue
		}

		// Joint solve of (tm, frac_imb): for a candidate frac_imb, the
		// MP-decontaminated Eq. 1 determines tm directly; the pair must
		// then satisfy Eq. 9. A grid scan over frac_imb picks the most
		// consistent pair — robust where a fixed-point iteration
		// oscillates (Eq. 9 is not monotone in frac_imb once tm reacts).
		instr := counters.ToFloat(b.Instr)
		syncCycles := pe.CpiSync * pe.FracSync * instr
		barrierMisses := counters.ToFloat(b.Barriers) * float64(b.Procs)
		cleanL2 := b.Hm*instr - barrierMisses
		cleanL1L2 := b.H2 * instr // the L1-miss/L2-hit count is sync-free
		tmOf := func(fi float64) float64 {
			if cleanL2 <= 0 {
				return rawTm
			}
			cleanInstr := (1 - pe.FracSync - fi) * instr
			cleanCycles := counters.ToFloat(b.Cycles) - syncCycles - m.CpiImb*fi*instr
			if cleanInstr <= 0 || cleanCycles <= 0 {
				return m.Tm1
			}
			tm := (cleanCycles - m.CPI0*cleanInstr - m.T2*cleanL1L2) / cleanL2
			return stats.Clamp(tm, m.Tm1, rawTm)
		}
		bestFi, bestRes := 0.0, math.Inf(1)
		maxFi := 0.95 - pe.FracSync
		const steps = 400
		for k := 0; k <= steps; k++ {
			fi := maxFi * float64(k) / steps
			tm := tmOf(fi)
			l2Inf := stats.Clamp(1-m.Compulsory-pe.Coh, 0, 1)
			hmInf := (1 - b.L1HitRate) * b.MemFrac * (1 - l2Inf)
			cpiB := b.CPI - math.Max(b.Hm-hmInf, 0)*math.Max(tm-m.T2, 0)
			cpiII := eq8(m.CPI0, pe.L1HitInfInf, pe.MemFracInfInf, m.T2, tm, l2InfInf)
			res := cpiB - (cpiII*(1-pe.FracSync-fi) + pe.CpiSync*pe.FracSync + m.CpiImb*fi)
			if math.Abs(res) < bestRes {
				bestRes, bestFi = math.Abs(res), fi
			}
		}
		finish(tmOf(bestFi), bestFi)
		m.Points = append(m.Points, pe)
	}
	if m.Points[0].Procs != 1 {
		return nil, in.insufficient("model: base runs must include a uniprocessor run")
	}
	m.Degradation = degradationOf(&in, uni, base, m.Points)
	return m, nil
}

// eq8 is the paper's Equation 8:
// cpi = cpi0 + (1 − L1hitr)·m·(t2·L2hitr + tm·(1 − L2hitr)).
func eq8(cpi0, l1hit, memFrac, t2, tm, l2hit float64) float64 {
	return cpi0 + (1-l1hit)*memFrac*(t2*l2hit+tm*(1-l2hit))
}

// Point returns the estimate for a processor count.
func (m *Model) Point(procs int) (PointEstimate, bool) {
	for _, p := range m.Points {
		if p.Procs == procs {
			return p, true
		}
	}
	return PointEstimate{}, false
}

// HitRateScan returns the uniprocessor L2 hit-rate curve samples (Fig. 3a).
func (m *Model) HitRateScan() []stats.Point { return m.hitCurve.Points() }

// HitRateAt evaluates the uniprocessor L2 hit-rate curve at a data-set size
// (used by the what-if L2-scaling estimate, Eq. 11's uniprocessor
// component).
func (m *Model) HitRateAt(dataBytes float64) float64 { return m.hitCurve.At(dataBytes) }

// L1HitRateAt and MemFracAt evaluate the other uniprocessor curves.
func (m *Model) L1HitRateAt(dataBytes float64) float64 { return m.l1Curve.At(dataBytes) }

// MemFracAt evaluates the uniprocessor memory-instruction-fraction curve.
func (m *Model) MemFracAt(dataBytes float64) float64 { return m.mCurve.At(dataBytes) }
