package model

import (
	"context"

	"scaltool/internal/obs"
)

// Fit estimates the model from a campaign's measurements, following §2.2–2.4.
func Fit(in Inputs, opt Options) (*Model, error) {
	return FitContext(context.Background(), in, opt)
}

// FitContext is Fit with observability. An observer carried in ctx
// (internal/obs) gets a "model.fit" span carrying the fit-quality numbers,
// fit/degradation counters and gauges, and a structured log line whenever
// the fit ran on a degraded input set — the signal an unattended campaign
// operator greps for.
func FitContext(ctx context.Context, in Inputs, opt Options) (*Model, error) {
	ctx, span := obs.StartSpan(ctx, "model.fit",
		obs.A("base_runs", len(in.Base)), obs.A("uni_runs", len(in.Uniproc)))
	defer span.End()
	m, err := fitModel(in, opt)
	mt := obs.Meter(ctx)
	if err != nil {
		span.SetAttr("error", err.Error())
		if mt != nil {
			mt.Counter("scaltool_model_fit_failures_total", "model fits that returned an error").Inc()
		}
		obs.Log(ctx).Error("model fit failed", "err", err)
		return nil, err
	}
	span.SetAttr("rmse", m.FitRMSE)
	span.SetAttr("r2", m.FitR2)
	span.SetAttr("degraded", m.Degradation.Degraded)
	if mt != nil {
		mt.Counter("scaltool_model_fits_total", "model fits completed").Inc()
		mt.Gauge("scaltool_model_fit_rmse", "t2/tm least-squares residual of the latest fit").Set(m.FitRMSE)
		mt.Gauge("scaltool_model_fit_r2", "coefficient of determination of the latest t2/tm fit").Set(m.FitR2)
		if m.Degradation.Degraded {
			mt.Counter("scaltool_model_degraded_fits_total", "model fits that ran on degraded input sets").Inc()
		}
	}
	if m.Degradation.Degraded {
		obs.Log(ctx).Warn("model fit ran degraded", "detail", m.Degradation.Summary())
	}
	return m, nil
}
