package model

import (
	"math"
	"testing"

	"scaltool/internal/counters"
)

// --- synthetic input construction -----------------------------------------
//
// The synthetic machine obeys Eq. 1 exactly: cpi = cpi0 + h2·t2 + hm·tm,
// with cpi0* = 1.0, t2* = 8, tm* = 100 on one processor. Rates are chosen
// per data-set size the way a real cache behaves: small sizes have few
// misses, mid sizes miss L1 only, overflowing sizes miss both.

const (
	trueCPI0 = 1.0
	trueT2   = 8.0
	trueTm   = 100.0
	l2Bytes  = 64 << 10
	memFrac  = 0.3
)

// msmt builds an internally consistent Measurement from the model's derived
// quantities.
func msmt(procs int, size uint64, cpi, h2, hm float64, ntsync, barriers uint64) Measurement {
	instr := uint64(10_000_000)
	l1missPerInstr := h2 + hm
	return Measurement{
		Procs:     procs,
		DataBytes: size,
		CPI:       cpi,
		H2:        h2,
		Hm:        hm,
		L1HitRate: 1 - l1missPerInstr/memFrac,
		L2HitRate: 1 - hm/math.Max(l1missPerInstr, 1e-12),
		MemFrac:   memFrac,
		Instr:     instr,
		Cycles:    uint64(cpi * float64(instr)),
		NtSync:    ntsync,
		Barriers:  barriers,
		Wall:      uint64(cpi * float64(instr) / float64(procs)),
	}
}

// uniRun builds a uniprocessor run at a size with Eq.-1-consistent CPI.
func uniRun(size uint64, h2, hm float64) Measurement {
	return msmt(1, size, trueCPI0+h2*trueT2+hm*trueTm, h2, hm, 0, 0)
}

// kernelRun builds a sync-kernel measurement with per-barrier cost ts.
func kernelRun(procs int, ts float64) Measurement {
	const barriers = 100
	const instrPerProc = 50_000
	perProcCycles := trueCPI0*instrPerProc + barriers*ts
	m := Measurement{
		Procs:    procs,
		Instr:    uint64(instrPerProc * procs),
		Cycles:   uint64(perProcCycles * float64(procs)),
		Barriers: barriers,
	}
	m.CPI = float64(m.Cycles) / float64(m.Instr)
	m.DataBytes = 1024
	return m
}

func tsyncAt(n int) float64 { return 50 * float64(n) }

// synthInputs builds a full, consistent input set. The base run at n
// processors behaves exactly like the uniprocessor run at data size s0/n —
// the model's central working-set assumption — and carries no
// multiprocessor effects (ntsync = 0), so frac_sync and frac_imb should
// come out ≈ 0 at every processor count.
func synthInputs() Inputs {
	in := Inputs{SyncKernel: map[int]Measurement{}, SpinCPI: 3.0}
	rates := map[uint64][2]float64{ // size → {h2, hm}
		4 << 10:   {0.001, 0.0001}, // Lubeck point: nearly miss-free
		16 << 10:  {0.02, 0.0005},  // mid: L1 misses, L2 fits (the Fig. 3a peak)
		32 << 10:  {0.021, 0.0006},
		80 << 10:  {0.012, 0.008}, // knee
		160 << 10: {0.004, 0.020}, // overflowing sizes
		320 << 10: {0.005, 0.030},
		640 << 10: {0.005, 0.032},
	}
	for size, r := range rates {
		in.Uniproc = append(in.Uniproc, uniRun(size, r[0], r[1]))
	}
	for _, n := range []int{1, 2, 4, 8} {
		in.SyncKernel[n] = kernelRun(n, tsyncAt(n))
		r := rates[640<<10/uint64(n)]
		base := uniRun(640<<10, r[0], r[1])
		base.Procs = n
		base.Wall = base.Cycles / uint64(n)
		in.Base = append(in.Base, base)
	}
	return in
}

func fitSynth(t *testing.T, opt Options) *Model {
	t.Helper()
	m, err := Fit(synthInputs(), opt)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return m
}

// --- tests -----------------------------------------------------------------

func TestFromReport(t *testing.T) {
	r := &counters.RunReport{
		Machine: "m", App: "a", Procs: 2, DataBytes: 4096,
		PerProc:    make([]counters.Set, 2),
		WallCycles: 500, Barriers: 7, Locks: 3,
	}
	for p := range r.PerProc {
		r.PerProc[p].Add(counters.Cycles, 1000)
		r.PerProc[p].Add(counters.GradInstr, 800)
		r.PerProc[p].Add(counters.GradLoads, 200)
		r.PerProc[p].Add(counters.GradStores, 40)
		r.PerProc[p].Add(counters.L1DMisses, 30)
		r.PerProc[p].Add(counters.L2Misses, 10)
		r.PerProc[p].Add(counters.StoreShared, 5)
	}
	m := FromReport(r)
	if m.Procs != 2 || m.Instr != 1600 || m.Cycles != 2000 || m.NtSync != 10 {
		t.Fatalf("FromReport = %+v", m)
	}
	if m.CPI != 1.25 || m.Barriers != 7 || m.Locks != 3 || m.Wall != 500 {
		t.Fatalf("FromReport = %+v", m)
	}
	if math.Abs(m.Hm-10.0/800) > 1e-15 || math.Abs(m.H2-20.0/800) > 1e-15 {
		t.Fatalf("miss rates wrong: %+v", m)
	}
}

func TestSpinnerCPI(t *testing.T) {
	r := &counters.RunReport{Procs: 3, PerProc: make([]counters.Set, 3)}
	r.PerProc[0].Add(counters.Cycles, 999)
	r.PerProc[0].Add(counters.GradInstr, 999) // busy proc: ignored
	for p := 1; p < 3; p++ {
		r.PerProc[p].Add(counters.Cycles, 3000)
		r.PerProc[p].Add(counters.GradInstr, 1000)
	}
	cpi, err := SpinnerCPI(r)
	if err != nil || cpi != 3.0 {
		t.Fatalf("SpinnerCPI = %g, %v; want 3.0", cpi, err)
	}
	if _, err := SpinnerCPI(&counters.RunReport{Procs: 1, PerProc: make([]counters.Set, 1)}); err == nil {
		t.Error("1-proc spin kernel accepted")
	}
	bad := &counters.RunReport{Procs: 2, PerProc: make([]counters.Set, 2)}
	if _, err := SpinnerCPI(bad); err == nil {
		t.Error("zero-instruction spinners accepted")
	}
}

func TestFitRecoversParameters(t *testing.T) {
	m := fitSynth(t, Options{L2Bytes: l2Bytes, Refit: true})
	if math.Abs(m.CPI0-trueCPI0) > 0.02*trueCPI0 {
		t.Errorf("cpi0 = %.4f, want ≈ %.2f", m.CPI0, trueCPI0)
	}
	if m.CPI0 >= m.CPI0Initial {
		t.Errorf("Eq. 2 adjustment did not reduce cpi0: %.4f ≥ %.4f", m.CPI0, m.CPI0Initial)
	}
	if math.Abs(m.T2-trueT2) > 0.1*trueT2 {
		t.Errorf("t2 = %.2f, want ≈ %.1f", m.T2, trueT2)
	}
	if math.Abs(m.Tm1-trueTm) > 0.05*trueTm {
		t.Errorf("tm = %.2f, want ≈ %.0f", m.Tm1, trueTm)
	}
}

func TestFitCompulsoryFromScanPeak(t *testing.T) {
	m := fitSynth(t, DefaultOptions(l2Bytes))
	// The local hit-rate curve peaks at the 16 KiB point (Fig. 3a: the
	// smallest size dips again — there the few misses that remain weigh
	// relatively more).
	wantComp := 0.0005 / 0.0205
	if math.Abs(m.Compulsory-wantComp) > 1e-9 {
		t.Errorf("compulsory = %.5f, want %.5f", m.Compulsory, wantComp)
	}
	if m.SMax != 16<<10 {
		t.Errorf("smax = %.0f, want 16384", m.SMax)
	}
}

func TestFitZeroMPForCleanBaseRuns(t *testing.T) {
	m := fitSynth(t, DefaultOptions(l2Bytes))
	for _, pe := range m.Points {
		if pe.FracSync != 0 {
			t.Errorf("n=%d: frac_sync = %g, want 0 (no ntsync events)", pe.Procs, pe.FracSync)
		}
		// Base runs replicate the uniprocessor CPI exactly, so no
		// imbalance should be inferred (small numerical slack).
		if pe.FracImb > 0.02 {
			t.Errorf("n=%d: frac_imb = %g, want ≈ 0", pe.Procs, pe.FracImb)
		}
	}
}

func TestFitTmNPerCount(t *testing.T) {
	m := fitSynth(t, DefaultOptions(l2Bytes))
	for _, pe := range m.Points {
		if math.Abs(pe.TmN-trueTm) > 0.1*trueTm {
			t.Errorf("tm(%d) = %.1f, want ≈ %.0f", pe.Procs, pe.TmN, trueTm)
		}
	}
}

func TestFitSyncKernelCurves(t *testing.T) {
	m := fitSynth(t, DefaultOptions(l2Bytes))
	for _, pe := range m.Points {
		want := tsyncAt(pe.Procs)
		if math.Abs(pe.TSync-want) > 0.15*want+5 {
			t.Errorf("tsync(%d) = %.1f, want ≈ %.0f", pe.Procs, pe.TSync, want)
		}
	}
	if m.CpiImb != 3.0 {
		t.Errorf("cpi_imb = %g, want 3.0", m.CpiImb)
	}
}

func TestFracSyncFollowsEq10(t *testing.T) {
	in := synthInputs()
	// Inject ntsync events into the n=4 base run.
	for i := range in.Base {
		if in.Base[i].Procs == 4 {
			in.Base[i].NtSync = 4000
			in.Base[i].Barriers = 100
		}
	}
	m, err := Fit(in, DefaultOptions(l2Bytes))
	if err != nil {
		t.Fatal(err)
	}
	pe, ok := m.Point(4)
	if !ok {
		t.Fatal("no point for n=4")
	}
	wantOst := 4000 * (m.CPI0 + pe.TSync)
	gotOst := pe.FracSync * pe.CpiSync * float64(pe.Meas.Instr)
	if math.Abs(gotOst-wantOst) > 1e-6*wantOst {
		t.Errorf("ostsync = %.0f, want %.0f (Eq. 10)", gotOst, wantOst)
	}
}

func TestFitValidation(t *testing.T) {
	good := synthInputs()

	noBase := good
	noBase.Base = nil

	fewUni := good
	fewUni.Uniproc = good.Uniproc[:2]

	badProc := good
	badProc.Uniproc = append([]Measurement{}, good.Uniproc...)
	badProc.Uniproc[1].Procs = 2

	noSpin := good
	noSpin.SpinCPI = 0

	noKernel := good
	noKernel.SyncKernel = nil

	cases := map[string]Inputs{
		"no base": noBase, "few uniproc": fewUni, "multi-proc in uniproc": badProc,
		"no spin": noSpin, "no kernel": noKernel,
	}
	for name, in := range cases {
		if _, err := Fit(in, DefaultOptions(l2Bytes)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	if _, err := Fit(good, Options{L2Bytes: 0}); err == nil {
		t.Error("L2Bytes=0 accepted")
	}
	// Overflow threshold above every size: t2/tm unfittable.
	if _, err := Fit(good, Options{L2Bytes: 64 << 20}); err == nil {
		t.Error("no overflowing sizes accepted")
	}
}

func TestFitRequiresUniprocessorBaseRun(t *testing.T) {
	in := synthInputs()
	var base []Measurement
	for _, b := range in.Base {
		if b.Procs != 1 {
			base = append(base, b)
		}
	}
	in.Base = base
	if _, err := Fit(in, DefaultOptions(l2Bytes)); err == nil {
		t.Error("base set without n=1 accepted")
	}
}

func TestBreakdownIdentities(t *testing.T) {
	m := fitSynth(t, DefaultOptions(l2Bytes))
	bps := m.Breakdown()
	if len(bps) != len(m.Points) {
		t.Fatalf("breakdown has %d points", len(bps))
	}
	for i, bp := range bps {
		pe := m.Points[i]
		if bp.Procs != pe.Procs {
			t.Fatalf("order mismatch")
		}
		if bp.Base != float64(pe.Meas.Cycles) {
			t.Errorf("n=%d: Base = %g, want measured %d", bp.Procs, bp.Base, pe.Meas.Cycles)
		}
		if bp.MP() != bp.Sync+bp.Imb {
			t.Errorf("MP != Sync+Imb")
		}
		if math.Abs(bp.L2Lim()-(bp.Base-bp.NoL2)) > 1e-9 {
			t.Errorf("L2Lim identity broken")
		}
		// The Eq. 9 consistency: NoL2 ≈ NoMP + Sync + Imb (the joint solve
		// minimizes this residual; clean synthetic data should close it).
		res := bp.NoL2 - (bp.NoMP + bp.Sync + bp.Imb)
		if math.Abs(res) > 0.03*bp.Base {
			t.Errorf("n=%d: Eq. 9 residual %.3g vs base %.3g", bp.Procs, res, bp.Base)
		}
		if bp.Procs == 1 && (bp.Sync != 0 || bp.Imb != 0) {
			t.Error("MP effects nonzero on the uniprocessor")
		}
	}
}

func TestSpeedups(t *testing.T) {
	m := fitSynth(t, DefaultOptions(l2Bytes))
	sps := m.Speedups()
	var wall1 float64
	for _, sp := range sps {
		if sp.Procs == 1 {
			wall1 = sp.Wall
		}
	}
	for _, sp := range sps {
		want := wall1 / sp.Wall
		if math.Abs(sp.Speedup-want) > 1e-9 {
			t.Errorf("speedup(%d) = %.3f, want %.3f", sp.Procs, sp.Speedup, want)
		}
		// The synthetic base runs get superlinear speedups (smaller
		// per-processor working sets miss less), like T3dheat.
		if sp.Procs > 1 && sp.Speedup < float64(sp.Procs) {
			t.Errorf("speedup(%d) = %.2f, want superlinear", sp.Procs, sp.Speedup)
		}
	}
}

func TestInfiniteHitRates(t *testing.T) {
	m := fitSynth(t, DefaultOptions(l2Bytes))
	pts := m.InfiniteHitRates()
	for _, p := range pts {
		if p.Infinite < p.Measured-1e-9 && p.Procs == 1 {
			t.Errorf("n=1: infinite hit rate %.4f below measured %.4f", p.Infinite, p.Measured)
		}
		if p.Infinite < 0 || p.Infinite > 1 {
			t.Errorf("infinite hit rate out of range: %+v", p)
		}
	}
}

func TestCPIInfInfCurveAndHitRateAt(t *testing.T) {
	m := fitSynth(t, DefaultOptions(l2Bytes))
	if len(m.CPIInfInfCurve()) != len(m.Points) {
		t.Fatal("curve length mismatch")
	}
	if len(m.HitRateScan()) != 7 {
		t.Fatalf("scan points = %d, want 7", len(m.HitRateScan()))
	}
	// Evaluated curves behave as interpolants of the inputs.
	if got := m.HitRateAt(4 << 10); math.Abs(got-(1-0.0001/0.0011)) > 1e-9 {
		t.Errorf("HitRateAt(small) = %g", got)
	}
	if m.L1HitRateAt(4<<10) <= 0 || m.MemFracAt(4<<10) != memFrac {
		t.Error("L1/m curves wrong")
	}
	if _, ok := m.Point(3); ok {
		t.Error("Point(3) should not exist")
	}
}

func TestRawTmNMode(t *testing.T) {
	// Paper-faithful mode must still fit and produce finite estimates.
	m, err := Fit(synthInputs(), Options{L2Bytes: l2Bytes, RawTmN: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, pe := range m.Points {
		if math.IsNaN(pe.TmN) || math.IsInf(pe.TmN, 0) || pe.TmN <= 0 {
			t.Errorf("raw tm(%d) = %g", pe.Procs, pe.TmN)
		}
	}
}

func TestFitImbalanceInjection(t *testing.T) {
	// Give the n=8 base run extra cycles and spin-like instructions and
	// verify the model attributes them to imbalance, not caching.
	in := synthInputs()
	for i := range in.Base {
		if in.Base[i].Procs == 8 {
			b := &in.Base[i]
			extraCycles := uint64(float64(b.Cycles) * 0.5)
			extraInstr := uint64(float64(extraCycles) / 3.0) // spin CPI = 3
			b.Cycles += extraCycles
			b.Instr += extraInstr
			b.CPI = float64(b.Cycles) / float64(b.Instr)
			// Re-derive per-instruction rates (misses unchanged).
			scale := float64(b.Instr-extraInstr) / float64(b.Instr)
			b.H2 *= scale
			b.Hm *= scale
			b.MemFrac = (b.MemFrac*float64(b.Instr-extraInstr) + 0.25*float64(extraInstr)) / float64(b.Instr)
			b.L1HitRate = 1 - (b.H2+b.Hm)/b.MemFrac
		}
	}
	m, err := Fit(in, DefaultOptions(l2Bytes))
	if err != nil {
		t.Fatal(err)
	}
	pe, _ := m.Point(8)
	imbCycles := m.CpiImb * pe.FracImb * float64(pe.Meas.Instr)
	wantImb := float64(pe.Meas.Cycles) / 3 // the injected 50% extra = 1/3 of new total
	if imbCycles < 0.6*wantImb || imbCycles > 1.4*wantImb {
		t.Errorf("imbalance cycles = %.3g, want ≈ %.3g", imbCycles, wantImb)
	}
}

func TestFitQualityDiagnostics(t *testing.T) {
	m := fitSynth(t, Options{L2Bytes: l2Bytes, Refit: true})
	// Noise-free synthetic data: the fit explains (nearly) all variance.
	if m.FitR2 < 0.99 {
		t.Errorf("R2 = %.4f, want ≈ 1 for exact data", m.FitR2)
	}
	if m.FitSizes < 2 {
		t.Errorf("FitSizes = %d", m.FitSizes)
	}
	if m.FitRMSE > 0.05 {
		t.Errorf("RMSE = %.4f, want small", m.FitRMSE)
	}
}

func TestCustomOverflowFactor(t *testing.T) {
	// A huge overflow factor leaves < 2 qualifying sizes → error; a small
	// one admits more sizes and still fits.
	in := synthInputs()
	if _, err := Fit(in, Options{L2Bytes: l2Bytes, OverflowFactor: 100}); err == nil {
		t.Error("overflow factor excluding all sizes accepted")
	}
	m, err := Fit(in, Options{L2Bytes: l2Bytes, OverflowFactor: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if m.FitSizes < 3 {
		t.Errorf("FitSizes = %d with a permissive threshold", m.FitSizes)
	}
}
