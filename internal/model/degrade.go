package model

import (
	"errors"
	"fmt"
	"sort"

	"scaltool/internal/counters"
)

// This file is the model's degraded-input contract. A fault-tolerant
// campaign can lose runs — quarantined reports, permanently failed
// attempts, sizes the application's grid cannot realize — and the fit must
// either proceed on what remains (recording exactly how far it ran from the
// full Table 3 input set) or refuse with an error callers can test for.

// ErrInsufficientInputs marks a fit refusal caused by too few usable
// measurements — below the least-squares minimum, missing the uniprocessor
// anchor, or missing a kernel. Test with errors.Is.
var ErrInsufficientInputs = errors.New("model: insufficient inputs")

// InsufficientInputsError is the typed form of an ErrInsufficientInputs
// refusal: the reason, plus the Degradation record of the input set at the
// moment the fit gave up — so a campaign caller can see exactly which
// dropped or quarantined runs starved the fit. Unwrap yields
// ErrInsufficientInputs, so errors.Is keeps working through any wrapping;
// extract the record with errors.As.
type InsufficientInputsError struct {
	Reason      string
	Degradation Degradation
}

func (e *InsufficientInputsError) Error() string {
	return e.Reason + ": " + ErrInsufficientInputs.Error()
}

// Unwrap ties the typed error to the ErrInsufficientInputs sentinel.
func (e *InsufficientInputsError) Unwrap() error { return ErrInsufficientInputs }

// insufficient builds the typed refusal, capturing the inputs' dropped-run
// record so the error is self-explanatory after any amount of wrapping.
func (in *Inputs) insufficient(format string, args ...any) error {
	d := Degradation{DroppedRuns: append([]string(nil), in.DroppedRuns...)}
	sort.Strings(d.DroppedRuns)
	d.Degraded = len(d.DroppedRuns) > 0
	return &InsufficientInputsError{Reason: fmt.Sprintf(format, args...), Degradation: d}
}

// Degradation is the typed record of everything a fit had to do without.
// The zero value means the fit ran on the full expected input set.
type Degradation struct {
	// Degraded is true when any field below is non-empty.
	Degraded bool

	// MissingUniSizes lists expected uniprocessor data-set sizes (from the
	// campaign plan) with no achieved sample anywhere near them; the
	// uniprocessor curves interpolate across those gaps.
	MissingUniSizes []uint64
	// MissingProcs lists expected base processor counts with no base run;
	// the model simply has no point there.
	MissingProcs []int
	// InterpolatedCoh lists processor counts whose Coh(s0, n) estimate
	// read the hit-rate curve at an s0/n with no measured sample nearby,
	// so the coherence miss rate rests on interpolation.
	InterpolatedCoh []int
	// DroppedRuns carries the campaign's quarantined/failed run
	// identities, so the record is self-contained.
	DroppedRuns []string
	// Notes holds further free-form degradations (e.g. missing sync-kernel
	// counts whose tsync(n) was interpolated).
	Notes []string
}

// Summary renders a one-line human summary ("" when not degraded).
func (d Degradation) Summary() string {
	if !d.Degraded {
		return ""
	}
	return fmt.Sprintf("degraded fit: %d missing uniproc size(s) %v, %d missing proc count(s) %v, coh interpolated at %v, %d dropped run(s), %d note(s)",
		len(d.MissingUniSizes), d.MissingUniSizes, len(d.MissingProcs), d.MissingProcs,
		d.InterpolatedCoh, len(d.DroppedRuns), len(d.Notes))
}

// sampleRatioTolerance bounds how far (as a size ratio) an achieved sample
// may sit from an expected size and still count as covering it. The Table 3
// grid is spaced 2× apart, and applications quantize requested sizes to
// their grids, so anything under ~√2·(quantization slack) of the expected
// size is the expected point; 1.45 keeps a quantized neighbor while
// rejecting the next grid point.
const sampleRatioTolerance = 1.45

// near reports whether two sizes are within the sample ratio tolerance.
func near(a, b uint64) bool {
	if a == 0 || b == 0 {
		return a == b
	}
	r := counters.ToFloat(a) / counters.ToFloat(b)
	if r < 1 {
		r = 1 / r
	}
	return r <= sampleRatioTolerance
}

// hasSampleNear reports whether any measurement's size is near s.
func hasSampleNear(ms []Measurement, s float64) bool {
	for _, m := range ms {
		r := counters.ToFloat(m.DataBytes) / s
		if r < 1 {
			r = 1 / r
		}
		if r <= sampleRatioTolerance {
			return true
		}
	}
	return false
}

// degradationOf assembles the fit's degradation record. uni and base are the
// sorted achieved measurements; points carries the per-count coherence
// interpolation flags set during fitting.
func degradationOf(in *Inputs, uni, base []Measurement, points []PointEstimate) Degradation {
	var d Degradation
	for _, want := range in.ExpectedUniSizes {
		covered := false
		for _, u := range uni {
			if near(u.DataBytes, want) {
				covered = true
				break
			}
		}
		if !covered {
			d.MissingUniSizes = append(d.MissingUniSizes, want)
		}
	}
	sort.Slice(d.MissingUniSizes, func(i, j int) bool { return d.MissingUniSizes[i] < d.MissingUniSizes[j] })
	for _, want := range in.ExpectedProcs {
		found := false
		for _, b := range base {
			if b.Procs == want {
				found = true
				break
			}
		}
		if !found {
			d.MissingProcs = append(d.MissingProcs, want)
		}
	}
	sort.Ints(d.MissingProcs)
	for _, pe := range points {
		if pe.CohInterpolated {
			d.InterpolatedCoh = append(d.InterpolatedCoh, pe.Procs)
		}
		if _, ok := in.SyncKernel[pe.Procs]; !ok {
			d.Notes = append(d.Notes, fmt.Sprintf("sync kernel missing at %d procs; tsync interpolated", pe.Procs))
		}
	}
	d.DroppedRuns = append([]string(nil), in.DroppedRuns...)
	sort.Strings(d.DroppedRuns)
	d.Degraded = len(d.MissingUniSizes)+len(d.MissingProcs)+len(d.InterpolatedCoh)+len(d.DroppedRuns)+len(d.Notes) > 0
	return d
}
