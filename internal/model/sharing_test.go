package model

import (
	"math"
	"testing"
)

func TestFracSyncFromBarriers(t *testing.T) {
	in := synthInputs()
	for i := range in.Base {
		if in.Base[i].Procs == 4 {
			in.Base[i].Barriers = 50
			in.Base[i].NtSync = 50 * 4 // pure barrier events
		}
	}
	m, err := Fit(in, DefaultOptions(l2Bytes))
	if err != nil {
		t.Fatal(err)
	}
	fBar, ok := m.FracSyncFromBarriers(4)
	if !ok {
		t.Fatal("no estimate at n=4")
	}
	pe, _ := m.Point(4)
	// With ntsync = barriers × procs and no locks, the two §2.4.2 methods
	// must agree exactly.
	if math.Abs(fBar-pe.FracSync) > 1e-12 {
		t.Fatalf("barrier method %.6g vs ntsync method %.6g", fBar, pe.FracSync)
	}
	// Uniprocessor: zero.
	if f, ok := m.FracSyncFromBarriers(1); !ok || f != 0 {
		t.Fatalf("n=1 frac = %g, %v", f, ok)
	}
	if _, ok := m.FracSyncFromBarriers(64); ok {
		t.Fatal("unmeasured count accepted")
	}
}

func TestSharingEstimate(t *testing.T) {
	in := synthInputs()
	for i := range in.Base {
		b := &in.Base[i]
		if b.Procs != 8 {
			continue
		}
		// Inject coherence: the measured multiprocessor hit rate drops
		// below the uniprocessor s0/n curve, and ntsync grows beyond the
		// barrier events.
		b.Barriers = 40
		b.NtSync = 40*8 + 1000 // 1000 sharing upgrades
		b.L2HitRate -= 0.05    // Coh(s0,8) ≈ 0.05
		// Keep Hm consistent with the lower hit rate.
		l1miss := b.H2 + b.Hm
		b.Hm = l1miss * (1 - b.L2HitRate)
		b.H2 = l1miss - b.Hm
		b.CPI = trueCPI0 + b.H2*trueT2 + b.Hm*trueTm
		b.Cycles = uint64(b.CPI * float64(b.Instr))
	}
	m, err := Fit(in, DefaultOptions(l2Bytes))
	if err != nil {
		t.Fatal(err)
	}
	est, ok := m.Sharing(8)
	if !ok {
		t.Fatal("no estimate")
	}
	if est.NtSyncPollution != 1000 {
		t.Errorf("pollution = %d, want 1000", est.NtSyncPollution)
	}
	pe, _ := m.Point(8)
	wantCoh := pe.Coh * (pe.Meas.H2 + pe.Meas.Hm) * float64(pe.Meas.Instr)
	if math.Abs(est.CoherenceMisses-wantCoh) > 1e-6*wantCoh {
		t.Errorf("coherence misses = %g, want %g", est.CoherenceMisses, wantCoh)
	}
	if est.SyncInduced != 40*8 {
		t.Errorf("sync-induced = %g", est.SyncInduced)
	}
	if est.DataMisses != est.CoherenceMisses-est.SyncInduced {
		t.Errorf("data misses = %g", est.DataMisses)
	}
	if est.Cycles <= 0 {
		t.Error("sharing cycles should be positive")
	}
	// The ntsync method must exceed the barrier method when polluted.
	if est.FracSyncNtSync <= est.FracSyncBarriers {
		t.Errorf("pollution not visible: ntsync %.4g ≤ barriers %.4g",
			est.FracSyncNtSync, est.FracSyncBarriers)
	}
}

func TestSharingUniprocessorAndMissing(t *testing.T) {
	m := fitSynth(t, DefaultOptions(l2Bytes))
	est, ok := m.Sharing(1)
	if !ok || est.Cycles != 0 || est.DataMisses != 0 {
		t.Fatalf("n=1 sharing = %+v, %v", est, ok)
	}
	if _, ok := m.Sharing(999); ok {
		t.Fatal("unmeasured count accepted")
	}
}
