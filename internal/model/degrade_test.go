package model

import (
	"errors"
	"strings"
	"testing"
)

// expectations mirrors what a full campaign would declare for synthInputs.
func expectations(in *Inputs) {
	for _, u := range in.Uniproc {
		in.ExpectedUniSizes = append(in.ExpectedUniSizes, u.DataBytes)
	}
	in.ExpectedProcs = []int{1, 2, 4, 8}
}

func TestCleanFitNotDegraded(t *testing.T) {
	in := synthInputs()
	expectations(&in)
	m, err := Fit(in, DefaultOptions(l2Bytes))
	if err != nil {
		t.Fatal(err)
	}
	if m.Degradation.Degraded {
		t.Fatalf("full input set reported degraded: %s", m.Degradation.Summary())
	}
	if m.Degradation.Summary() != "" {
		t.Error("clean fit has a non-empty degradation summary")
	}
	for _, bp := range m.Breakdown() {
		if bp.Interpolated {
			t.Errorf("n=%d marked interpolated on full inputs", bp.Procs)
		}
	}
}

// TestDegradedFitRecordsLosses drops a uniprocessor size (the s0/8 working
// set), a base processor count, and a sync kernel, then checks the fit still
// runs and the typed record enumerates each loss.
func TestDegradedFitRecordsLosses(t *testing.T) {
	in := synthInputs()
	expectations(&in)
	const lost = 80 << 10
	var uni []Measurement
	for _, u := range in.Uniproc {
		if u.DataBytes != lost {
			uni = append(uni, u)
		}
	}
	in.Uniproc = uni
	var base []Measurement
	for _, b := range in.Base {
		if b.Procs != 4 {
			base = append(base, b)
		}
	}
	in.Base = base
	delete(in.SyncKernel, 2)
	in.DroppedRuns = []string{"uni_p01_s81920", "base_p04_s655360", "ksync_p02_s0"}

	m, err := Fit(in, DefaultOptions(l2Bytes))
	if err != nil {
		t.Fatalf("degraded inputs must still fit: %v", err)
	}
	d := m.Degradation
	if !d.Degraded {
		t.Fatal("losses not reported as degradation")
	}
	if len(d.MissingUniSizes) != 1 || d.MissingUniSizes[0] != lost {
		t.Errorf("MissingUniSizes = %v, want [%d]", d.MissingUniSizes, lost)
	}
	if len(d.MissingProcs) != 1 || d.MissingProcs[0] != 4 {
		t.Errorf("MissingProcs = %v, want [4]", d.MissingProcs)
	}
	// s0/8 = the lost 80 KiB point: the n=8 coherence estimate now rests on
	// interpolation between 32 KiB and 160 KiB.
	found := false
	for _, n := range d.InterpolatedCoh {
		if n == 8 {
			found = true
		}
	}
	if !found {
		t.Errorf("InterpolatedCoh = %v, want to include 8", d.InterpolatedCoh)
	}
	interp := false
	for _, bp := range m.Breakdown() {
		if bp.Procs == 8 && bp.Interpolated {
			interp = true
		}
	}
	if !interp {
		t.Error("breakdown point n=8 not marked interpolated")
	}
	if len(d.DroppedRuns) != 3 {
		t.Errorf("DroppedRuns = %v", d.DroppedRuns)
	}
	noted := false
	for _, n := range d.Notes {
		if strings.Contains(n, "sync kernel missing at 2") {
			noted = true
		}
	}
	if !noted {
		t.Errorf("Notes = %v, want a missing-sync-kernel note", d.Notes)
	}
	if s := d.Summary(); s == "" || !strings.Contains(s, "degraded fit") {
		t.Errorf("summary %q", s)
	}
}

// TestFitRefusalsAreTyped verifies every below-minimum refusal satisfies
// errors.Is(err, ErrInsufficientInputs), so callers can distinguish "give me
// more data" from "your data is inconsistent".
func TestFitRefusalsAreTyped(t *testing.T) {
	cases := map[string]func() (Inputs, Options){
		"too few uniproc runs": func() (Inputs, Options) {
			in := synthInputs()
			in.Uniproc = in.Uniproc[:2]
			return in, DefaultOptions(l2Bytes)
		},
		"below least-squares minimum": func() (Inputs, Options) {
			// Overflow threshold above every size: < 2 points for t2/tm.
			return synthInputs(), DefaultOptions(64 << 20)
		},
		"no uniprocessor base run": func() (Inputs, Options) {
			in := synthInputs()
			var base []Measurement
			for _, b := range in.Base {
				if b.Procs != 1 {
					base = append(base, b)
				}
			}
			in.Base = base
			return in, DefaultOptions(l2Bytes)
		},
		"no sync kernels": func() (Inputs, Options) {
			in := synthInputs()
			in.SyncKernel = nil
			return in, DefaultOptions(l2Bytes)
		},
		"no spin kernel": func() (Inputs, Options) {
			in := synthInputs()
			in.SpinCPI = 0
			return in, DefaultOptions(l2Bytes)
		},
	}
	for name, build := range cases {
		in, opt := build()
		_, err := Fit(in, opt)
		if err == nil {
			t.Errorf("%s: fit accepted", name)
			continue
		}
		if !errors.Is(err, ErrInsufficientInputs) {
			t.Errorf("%s: error %v does not wrap ErrInsufficientInputs", name, err)
		}
	}
	// An inconsistency (not a shortage) must NOT wear the insufficiency tag.
	if _, err := Fit(synthInputs(), Options{}); err == nil || errors.Is(err, ErrInsufficientInputs) {
		t.Errorf("L2Bytes=0 error mis-typed: %v", err)
	}
}
