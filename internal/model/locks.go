package model

import (
	"fmt"

	"scaltool/internal/counters"
)

// Lock-aware synchronization estimation — the §2.4.2 footnote: "If the
// application has locks, we need to separately compute the cpi_sync of a
// kernel of locks and count at run-time the number of locks executed."
//
// The barrier kernel's tsync(n) prices a barrier participation; a lock
// acquire/release prices differently (it queues on the lock, not on a
// release flag). LockCosts fits the per-lock cost from the lock kernel the
// same way tsync is fitted from the barrier kernel, and
// InstrumentedSyncCycles combines both instrumented counts into the
// method-1 synchronization estimate:
//
//	ost_sync = barriers·procs·(cpi0 + tsync(n)) + locks·(cpi0 + tlock(n))

// LockCost is the fitted per-lock cost at one processor count.
type LockCost struct {
	Procs int
	// TLock is the estimated cycles per lock acquire/release beyond the
	// base instruction cost — including the serialization wait, which is
	// why it grows with the processor count.
	TLock float64
	// CpiLock is the lock kernel's measured CPI (the lock analogue of
	// cpi_sync(n)).
	CpiLock float64
}

// FitLockCosts estimates per-lock costs from lock-kernel measurements
// (apps.BuildLockKernel runs reduced with FromReport). Kernels must carry
// their instrumented lock counts.
func FitLockCosts(kernels map[int]Measurement, cpi0 float64) (map[int]LockCost, error) {
	out := make(map[int]LockCost, len(kernels))
	for procs, k := range kernels {
		if k.Locks == 0 || k.Instr == 0 {
			return nil, fmt.Errorf("model: lock kernel at %d procs has no locks/instructions", procs)
		}
		// Subtract the barrier overhead of the kernel's own regions first
		// (each region still ends in a barrier), then attribute the rest
		// to the locks.
		perProcCycles := counters.ToFloat(k.Cycles) / float64(k.Procs)
		perProcInstr := counters.ToFloat(k.Instr) / float64(k.Procs)
		perProcLocks := counters.ToFloat(k.Locks) / float64(k.Procs)
		tl := (perProcCycles - cpi0*perProcInstr) / perProcLocks
		if tl < 0 {
			tl = 0
		}
		out[procs] = LockCost{Procs: procs, TLock: tl, CpiLock: k.CPI}
	}
	return out, nil
}

// InstrumentedSyncCycles returns the method-1 synchronization-cycle
// estimate for one measured point, pricing barriers with the barrier
// kernel's tsync(n) and locks with the lock kernel's tlock(n). locks may be
// nil for barrier-only codes (equivalent to FracSyncFromBarriers).
func (m *Model) InstrumentedSyncCycles(procs int, locks map[int]LockCost) (float64, bool) {
	pe, ok := m.Point(procs)
	if !ok {
		return 0, false
	}
	if procs == 1 {
		return 0, true
	}
	b := pe.Meas
	ost := counters.ToFloat(b.Barriers) * float64(procs) * (m.CPI0 + pe.TSync)
	if b.Locks > 0 {
		tl := pe.TSync // fallback: price a lock like a barrier participation
		if lc, ok := locks[procs]; ok {
			tl = lc.TLock
		} else if len(locks) > 0 {
			// Nearest measured count below/above.
			best, bestDist := LockCost{}, int(^uint(0)>>1)
			for p, lc := range locks {
				d := p - procs
				if d < 0 {
					d = -d
				}
				if d < bestDist {
					best, bestDist = lc, d
				}
			}
			tl = best.TLock
		}
		ost += counters.ToFloat(b.Locks) * (m.CPI0 + tl)
	}
	return ost, true
}
