// Package model implements Scal-Tool's empirical scalability model — the
// paper's contribution (§2). The model consumes only hardware event-counter
// measurements (via counters.RunReport) gathered by the Table 3 campaign:
//
//   - the application at the base data-set size s0 for each processor count
//     1, 2, 4, …, 2^(n−1);
//   - the application on a uniprocessor at fractional data-set sizes
//     s0/2, s0/4, …;
//   - the small synthetic kernels (barrier loop, idle spin) of §2.4.2.
//
// From these it estimates cpi0 (the compute CPI, with the paper's unbiased
// compulsory-miss adjustment, Eq. 2), the per-miss penalties t2 and tm(n)
// (least squares over Eq. 3), the compulsory and coherence miss rates
// (Fig. 3), the infinite-cache CPIs cpi∞ and cpi∞,∞ (Eq. 8), the
// synchronization and load-imbalance instruction fractions (Eqs. 9–10), and
// finally the cycle breakdown curves of Figures 1/2/6/9/12: Base, L2Lim
// (insufficient caching space), Sync, Imb and MP = Sync + Imb.
package model

import (
	"errors"
	"fmt"
	"sort"

	"scaltool/internal/counters"
)

// Measurement is the model's view of one run: the derived counter ratios of
// the paper, aggregated over all processors of the run.
type Measurement struct {
	Procs     int
	DataBytes uint64

	CPI       float64 // cycles per graduated instruction
	H2        float64 // (L1 misses − L2 misses) / instructions
	Hm        float64 // L2 misses / instructions
	L1HitRate float64 // 1 − L1 misses / (loads+stores)
	L2HitRate float64 // local: 1 − L2 misses / L1 misses
	MemFrac   float64 // (loads+stores) / instructions

	Instr    uint64 // total graduated instructions, all processors
	Cycles   uint64 // total cycles, all processors
	NtSync   uint64 // store-to-shared events, all processors (ntsync)
	Barriers uint64 // instrumented barrier count
	Locks    uint64 // instrumented lock count
	Wall     uint64 // elapsed cycles
}

// FromReport derives a Measurement from a run's counter file.
func FromReport(r *counters.RunReport) Measurement {
	t := r.Total()
	return Measurement{
		Procs:     r.Procs,
		DataBytes: r.DataBytes,
		CPI:       t.CPI(),
		H2:        t.H2(),
		Hm:        t.Hm(),
		L1HitRate: t.L1HitRate(),
		L2HitRate: t.L2LocalHitRate(),
		MemFrac:   t.MemFrac(),
		Instr:     t[counters.GradInstr],
		Cycles:    t[counters.Cycles],
		NtSync:    t[counters.StoreShared],
		Barriers:  r.Barriers,
		Locks:     r.Locks,
		Wall:      r.WallCycles,
	}
}

// SpinnerCPI extracts cpi_imb from a spin-kernel report: the CPI of the
// processors that only spin (everyone except processor 0). The paper reads
// this straight off the kernel's counters (§2.4.2).
func SpinnerCPI(r *counters.RunReport) (float64, error) {
	if r.Procs < 2 {
		return 0, errors.New("model: spin kernel needs ≥ 2 processors")
	}
	var cyc, instr uint64
	for p := 1; p < r.Procs; p++ {
		cyc += r.PerProc[p][counters.Cycles]
		instr += r.PerProc[p][counters.GradInstr]
	}
	if instr == 0 {
		return 0, errors.New("model: spin kernel spinners graduated no instructions")
	}
	return float64(cyc) / float64(instr), nil
}

// Inputs is the complete measurement set of one campaign for one
// application.
type Inputs struct {
	// Base holds the s0 runs at each processor count (must include
	// Procs=1; sorted or not — Fit sorts).
	Base []Measurement
	// Uniproc holds single-processor runs at varying data-set sizes, from
	// sizes small enough to sit in the caches (the Lubeck/compulsory scan
	// of Fig. 3a) up to s0 and the fractional sizes s0/2 … s0/2^(n−1). A
	// run may serve several roles; Fit classifies by size.
	Uniproc []Measurement
	// SyncKernel maps processor count → the barrier-loop kernel run.
	SyncKernel map[int]Measurement
	// SpinCPI is cpi_imb measured from the spin kernel (SpinnerCPI).
	SpinCPI float64

	// The fields below describe what the campaign *planned* to measure, so
	// Fit can record how degraded the achieved input set is. All optional:
	// empty means "no expectation", and the fit reports no degradation
	// beyond what it detects itself (interpolated coherence points).

	// ExpectedUniSizes lists the planned uniprocessor data-set sizes
	// (requested, pre-grid-quantization), excluding sizes the application
	// legitimately cannot build.
	ExpectedUniSizes []uint64
	// ExpectedProcs lists the planned base-run processor counts.
	ExpectedProcs []int
	// DroppedRuns lists run identities the campaign quarantined or
	// permanently failed, carried into the degradation record.
	DroppedRuns []string
}

// Options configures Fit.
type Options struct {
	// L2Bytes is the machine's L2 capacity; only uniprocessor runs whose
	// data sets overflow it contribute to the t2/tm least squares ("we use
	// only data set sizes that overflow the L2 cache", §2.3).
	L2Bytes int
	// OverflowFactor scales the overflow threshold (default 1.5: safely
	// past the capacity knee).
	OverflowFactor float64
	// Refit, when true, re-estimates t2/tm once with the adjusted cpi0.
	// The paper performs a single pass; Refit is an extension that removes
	// the residual bias the initial (biased) cpi0 leaves in t2/tm.
	Refit bool
	// RawTmN keeps the paper's single-pass tm(n) estimate (Eq. 1 applied
	// directly to the base runs). By default the model iteratively removes
	// the estimated synchronization/imbalance cycles before re-solving
	// Eq. 1 — without this, spin cycles inflate tm(n) at high processor
	// counts and leak multiprocessor effects into the cpi∞,∞ floor.
	RawTmN bool
}

// DefaultOptions returns the paper-faithful settings for a machine.
func DefaultOptions(l2Bytes int) Options {
	return Options{L2Bytes: l2Bytes, OverflowFactor: 1.5}
}

// sortedByProcs returns a copy sorted ascending by processor count.
func sortedByProcs(ms []Measurement) []Measurement {
	out := make([]Measurement, len(ms))
	copy(out, ms)
	sort.Slice(out, func(i, j int) bool { return out[i].Procs < out[j].Procs })
	return out
}

// sortedBySize returns a copy sorted ascending by data-set size.
func sortedBySize(ms []Measurement) []Measurement {
	out := make([]Measurement, len(ms))
	copy(out, ms)
	sort.Slice(out, func(i, j int) bool { return out[i].DataBytes < out[j].DataBytes })
	return out
}

// validate checks the inputs are sufficient for fitting.
func (in *Inputs) validate(opt Options) error {
	if opt.L2Bytes <= 0 {
		return errors.New("model: Options.L2Bytes must be positive")
	}
	if len(in.Base) == 0 {
		return in.insufficient("model: no base-size runs")
	}
	if len(in.Uniproc) < 3 {
		return in.insufficient("model: %d uniprocessor runs; need ≥ 3 (a small run plus ≥ 2 L2-overflowing sizes)", len(in.Uniproc))
	}
	for i, m := range in.Base {
		if m.Procs <= 0 || m.Instr == 0 {
			return fmt.Errorf("model: base run %d malformed (procs=%d instr=%d)", i, m.Procs, m.Instr)
		}
	}
	haveUni := false
	for i, m := range in.Uniproc {
		if m.Procs != 1 {
			return fmt.Errorf("model: uniproc run %d has %d processors", i, m.Procs)
		}
		haveUni = true
	}
	if !haveUni {
		return in.insufficient("model: no uniprocessor runs")
	}
	if in.Base[0].DataBytes == 0 {
		return errors.New("model: base runs lack data sizes")
	}
	if in.SpinCPI <= 0 {
		return in.insufficient("model: SpinCPI missing (run the spin kernel)")
	}
	if len(in.SyncKernel) == 0 {
		return in.insufficient("model: sync kernel runs missing")
	}
	return nil
}
