package model

import (
	"testing"

	"scaltool/internal/apps"
	"scaltool/internal/machine"
	"scaltool/internal/sim"
)

func lockKernelMeasurement(procs int, locksPerProc, instrPerProc uint64, tlock float64) Measurement {
	m := Measurement{
		Procs:    procs,
		Instr:    instrPerProc * uint64(procs),
		Locks:    locksPerProc * uint64(procs),
		Barriers: 10,
	}
	perProcCycles := trueCPI0*float64(instrPerProc) + float64(locksPerProc)*tlock
	m.Cycles = uint64(perProcCycles * float64(procs))
	m.CPI = float64(m.Cycles) / float64(m.Instr)
	m.DataBytes = 1024
	return m
}

func TestFitLockCostsRecovers(t *testing.T) {
	kernels := map[int]Measurement{
		2: lockKernelMeasurement(2, 100, 50_000, 300),
		8: lockKernelMeasurement(8, 100, 50_000, 1200),
	}
	costs, err := FitLockCosts(kernels, trueCPI0)
	if err != nil {
		t.Fatal(err)
	}
	if got := costs[2].TLock; got < 290 || got > 310 {
		t.Errorf("tlock(2) = %g, want ≈ 300", got)
	}
	if got := costs[8].TLock; got < 1150 || got > 1250 {
		t.Errorf("tlock(8) = %g, want ≈ 1200", got)
	}
	if costs[8].CpiLock <= costs[2].CpiLock {
		t.Error("lock kernel CPI should grow with contention")
	}
}

func TestFitLockCostsRejectsEmpty(t *testing.T) {
	if _, err := FitLockCosts(map[int]Measurement{2: {Procs: 2, Instr: 10}}, 1); err == nil {
		t.Fatal("kernel without locks accepted")
	}
}

func TestInstrumentedSyncCyclesCombines(t *testing.T) {
	in := synthInputs()
	for i := range in.Base {
		if in.Base[i].Procs == 4 {
			in.Base[i].Barriers = 20
			in.Base[i].Locks = 50
		}
	}
	m, err := Fit(in, DefaultOptions(l2Bytes))
	if err != nil {
		t.Fatal(err)
	}
	pe, _ := m.Point(4)
	locks := map[int]LockCost{4: {Procs: 4, TLock: 500}}
	got, ok := m.InstrumentedSyncCycles(4, locks)
	if !ok {
		t.Fatal("no estimate")
	}
	want := 20*4*(m.CPI0+pe.TSync) + 50*(m.CPI0+500)
	if got != want {
		t.Fatalf("ost = %g, want %g", got, want)
	}
	// Without a lock kernel, locks price like barrier participations.
	got2, _ := m.InstrumentedSyncCycles(4, nil)
	want2 := 20*4*(m.CPI0+pe.TSync) + 50*(m.CPI0+pe.TSync)
	if got2 != want2 {
		t.Fatalf("fallback ost = %g, want %g", got2, want2)
	}
	// Nearest-count fallback.
	got3, _ := m.InstrumentedSyncCycles(4, map[int]LockCost{8: {Procs: 8, TLock: 900}})
	want3 := 20*4*(m.CPI0+pe.TSync) + 50*(m.CPI0+900)
	if got3 != want3 {
		t.Fatalf("nearest ost = %g, want %g", got3, want3)
	}
	if v, ok := m.InstrumentedSyncCycles(1, nil); !ok || v != 0 {
		t.Fatal("uniprocessor should be zero")
	}
	if _, ok := m.InstrumentedSyncCycles(64, nil); ok {
		t.Fatal("unmeasured count accepted")
	}
}

// Integration: fit lock costs from actual simulated lock kernels and verify
// the estimate against the simulator's ground-truth sync attribution.
func TestLockKernelIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated kernels")
	}
	cfg := machine.ScaledOrigin()
	kernels := map[int]Measurement{}
	ground := map[int]float64{}
	for _, n := range []int{2, 4, 8} {
		prog, err := apps.BuildLockKernel(cfg, n, 30, 500)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		kernels[n] = FromReport(&res.Report)
		ground[n] = res.Ground.MPCycles() // lock queueing creates both sync waits and arrival-skew spin
	}
	costs, err := FitLockCosts(kernels, 0.62)
	if err != nil {
		t.Fatal(err)
	}
	if costs[8].TLock <= costs[2].TLock {
		t.Errorf("tlock should grow with contention: %g vs %g", costs[2].TLock, costs[8].TLock)
	}
	// Pricing the kernel's own locks with the fitted tlock should land near
	// its ground-truth multiprocessor cycles (lock serialization produces
	// both sync waits and arrival-skew spin; the per-lock price covers
	// both).
	for _, n := range []int{2, 4, 8} {
		k := kernels[n]
		est := float64(k.Locks) * (0.62 + costs[n].TLock)
		if est < 0.5*ground[n] || est > 1.5*ground[n] {
			t.Errorf("n=%d: estimate %.3g vs ground truth %.3g", n, est, ground[n])
		}
	}
}
