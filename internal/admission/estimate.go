package admission

import (
	"math"
	"net/http"

	"scaltool/internal/apps"
	"scaltool/internal/campaign"
	"scaltool/internal/machine"
	"scaltool/internal/sim"
)

// Cost estimation. The admission decision needs the cost of a campaign
// *before* the campaign exists, from quantities a hostile client controls:
// regions × processors × dataset fraction. Two estimators provide it:
//
//   - EstimateProgram walks a built sim.Program and prices its ops.
//   - A RunEstimator (user program specs) prices a run in closed form from
//     the spec's counts, without building anything — building is exactly the
//     step whose allocations must be bounded first.
//
// Both charge the same pessimistic unit prices (accessCycles, barrier
// hot-spot serialization), so built-in and user-submitted programs are
// budgeted on the same scale. These are upper bounds, not predictions: the
// point is that no admitted request can cost more than estimated, and
// budgets are calibrated against the same estimator so the slack cancels.

// RunEstimator is implemented by applications that can price a run in
// closed form. EstimatePlan uses it instead of building the program — the
// only safe option for user-submitted specs, whose build-time allocations
// are the thing being gated.
type RunEstimator interface {
	EstimateRun(cfg machine.Config, procs int, dataBytes uint64) Cost
}

// Per-entity accounting sizes (bytes, deliberately generous): simulator
// cache-line state, directory/page-table entries, and retained per-region ×
// per-processor timeline records.
const (
	lineStateBytes = 64
	pageStateBytes = 96
	phaseBytes     = 128
	procStateBytes = 512
)

// accessCycles prices one memory access at its worst: L1 miss, L2 miss,
// remote home (hypercube diameter hops), dirty forward.
func accessCycles(cfg machine.Config, procs int) float64 {
	hops := 1
	for nodes := (procs + cfg.ProcsPerRouter - 1) / cfg.ProcsPerRouter; nodes > 1; nodes /= 2 {
		hops++
	}
	return cfg.Cost.L1HitCPI +
		float64(cfg.Lat.L2Hit+cfg.Lat.MemLocal+cfg.Lat.Directory+cfg.Lat.DirtyFwd+cfg.Lat.TLBMiss) +
		float64(2*hops*cfg.Lat.RouterHop)
}

// barrierCycles prices one region's closing barrier: entry/exit
// instructions and fetchop acquire per processor, plus the release flag's
// serialized per-waiter service — the hot spot that grows with the
// processor count — charged to every waiter.
func barrierCycles(cfg machine.Config, procs int) float64 {
	p := float64(procs)
	return p*(float64(cfg.Sync.BarrierInstr)*cfg.Cost.ComputeCPI+float64(cfg.Lat.SyncAcquire)) +
		p*p*float64(cfg.Lat.SyncService)
}

// opTally accumulates a program's (or spec's) raw counts.
type opTally struct {
	instr         float64 // non-memory instructions, all processors
	accesses      float64 // memory accesses, all processors
	criticalInstr float64 // instructions inside critical sections
	gatherBytes   int64   // retained gather address-list bytes
	regions       int
}

// cost prices a tally on a machine.
func (t opTally) cost(cfg machine.Config, procs int, spaceBytes uint64) Cost {
	cycles := t.instr*cfg.Cost.ComputeCPI + t.accesses*accessCycles(cfg, procs)
	// Critical sections serialize across processors: the worst waiter sees
	// every other processor's sections ahead of its own.
	cycles += t.criticalInstr * cfg.Cost.ComputeCPI * float64(procs-1)
	cycles += float64(t.regions) * barrierCycles(cfg, procs)

	lines := int64(spaceBytes) / int64(cfg.L2.LineBytes)
	if fa := int64(t.accesses); lines > fa { // can't touch more lines than accesses
		lines = fa
	}
	pages := int64(spaceBytes)/int64(cfg.PageBytes) + 1
	timeline := int64(t.regions)*int64(procs)*phaseBytes + int64(procs)*procStateBytes
	alloc := int64(procs)*int64(cfg.L1.Lines()+cfg.L2.Lines())*lineStateBytes +
		lines*lineStateBytes + pages*pageStateBytes + t.gatherBytes + timeline

	return Cost{Cycles: cycles, AllocBytes: alloc, TimelineBytes: timeline, Runs: 1}
}

// EstimateProgram prices one built program: the predicted simulated cycles
// (upper bound), allocation footprint, and retained timeline bytes of
// running it on cfg.
func EstimateProgram(cfg machine.Config, prog *sim.Program) Cost {
	var t opTally
	regions := prog.Regions()
	t.regions = len(regions)
	for ri := range regions {
		for pi := range regions[ri].Streams {
			for _, op := range regions[ri].Streams[pi].Ops {
				switch op.Kind {
				case sim.OpCompute:
					t.instr += float64(op.Instr)
				case sim.OpSeq:
					t.accesses += float64(op.Count)
					t.instr += float64(op.Count) * float64(op.InstrPer)
				case sim.OpGather:
					n := float64(len(op.Addrs))
					t.accesses += n
					t.instr += n * float64(op.InstrPer)
					t.gatherBytes += int64(len(op.Addrs)) * 8
				case sim.OpCritical:
					t.instr += float64(op.Instr) + float64(cfg.Sync.LockInstr)
					t.criticalInstr += float64(op.Instr)
				}
			}
		}
	}
	return t.cost(cfg, prog.Procs, prog.SpaceBytes())
}

// EstimatePlan prices the full campaign a plan implies — base runs at every
// processor count, uniprocessor runs at every fractional size, the
// synchronization and spin kernels — against budget b.
//
// Safety ordering matters here: a run's dataset size is checked against the
// request byte budget *before* its program is built, because builders
// allocate address lists proportional to the dataset (a build can be the
// attack). Applications implementing RunEstimator are priced in closed form
// and never built. workers is the simulation concurrency the server will
// use; transient build/run footprints are charged for that many concurrent
// runs, retained timelines for all of them.
func (b Budget) EstimatePlan(cfg machine.Config, app apps.App, plan campaign.Plan, workers int) (Cost, *Rejection) {
	b = b.withDefaults()
	if workers < 1 {
		workers = 1
	}

	type runShape struct {
		procs int
		size  uint64
	}
	runs := make([]runShape, 0, len(plan.ProcCounts)+len(plan.UniSizes))
	for _, n := range plan.ProcCounts {
		runs = append(runs, runShape{procs: n, size: plan.S0})
	}
	for _, s := range plan.UniSizes {
		runs = append(runs, runShape{procs: 1, size: s})
	}

	est, _ := app.(RunEstimator)
	var (
		cycles        float64
		maxTransient  int64
		retained      int64
		nRuns         int
		largestBuild  uint64
		rejectedBuild *Rejection
	)
	price := func(c Cost) {
		cycles += c.Cycles
		retained += c.TimelineBytes
		if tr := c.AllocBytes - c.TimelineBytes; tr > maxTransient {
			maxTransient = tr
		}
		nRuns += c.Runs
	}
	for _, r := range runs {
		// Pre-build gate: the build's own allocations are O(size) (address
		// lists, partition tables), so a size over the byte budget must be
		// refused before Build runs, not after.
		if r.size > largestBuild {
			largestBuild = r.size
		}
		if int64(r.size) > b.MaxRequestBytes {
			rejectedBuild = Reject(http.StatusRequestEntityTooLarge, "cost_bytes",
				"campaign data-set size %d bytes exceeds the per-request byte budget of %d (building it would, before simulating anything)",
				r.size, b.MaxRequestBytes) //scalvet:ignore rejection early-exit: fires at most once, then breaks
			break
		}
		if est != nil {
			price(est.EstimateRun(cfg, r.procs, r.size))
			continue
		}
		prog, err := app.Build(cfg, r.procs, r.size)
		if err != nil {
			// The campaign skips sizes the application's grid cannot realize;
			// so does the estimate. A base-run build error surfaces later as
			// the request's own semantic failure.
			continue
		}
		price(EstimateProgram(cfg, prog))
	}
	if rejectedBuild != nil {
		return Cost{}, rejectedBuild
	}

	// Estimation kernels: a barrier-loop kernel per processor count and one
	// spin kernel. Their footprints are tiny and fixed; price them as pure
	// barrier/spin work so the totals stay honest.
	for _, n := range plan.ProcCounts {
		kc := float64(apps.SyncKernelBarriers) * barrierCycles(cfg, n)
		cycles += kc
		retained += int64(n)*phaseBytes + int64(n)*procStateBytes
		nRuns++
	}
	nmax := plan.ProcCounts[len(plan.ProcCounts)-1]
	cycles += 20 * barrierCycles(cfg, nmax) * 4 // spin kernel: barriers + spin-wait padding
	retained += int64(nmax) * (phaseBytes + procStateBytes)
	nRuns++

	conc := workers
	if conc > nRuns {
		conc = nRuns
	}
	c := Cost{
		Cycles:        cycles,
		AllocBytes:    maxTransient*int64(conc) + retained,
		TimelineBytes: retained,
		Runs:          nRuns,
	}
	if math.IsNaN(c.Cycles) || math.IsInf(c.Cycles, 0) {
		return Cost{}, Reject(http.StatusUnprocessableEntity, "cost_overflow",
			"request cost overflows the estimator")
	}
	return c, nil
}

// EstimateDiagnose prices a diagnosis request: the underlying campaign
// plus the diagnosis overlay. The overlay's retained state — per-region ×
// per-processor curves, the structure graph, the encoded report — is
// bounded by one more copy of the campaign's retained timeline records,
// so it is charged exactly that.
func (b Budget) EstimateDiagnose(cfg machine.Config, app apps.App, plan campaign.Plan, workers int) (Cost, *Rejection) {
	c, rej := b.EstimatePlan(cfg, app, plan, workers)
	if rej != nil {
		return Cost{}, rej
	}
	c.AllocBytes += c.TimelineBytes
	return c, nil
}
