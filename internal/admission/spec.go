package admission

import (
	"fmt"
	"net/http"
	"strings"

	"scaltool/internal/apps"
	"scaltool/internal/machine"
	"scaltool/internal/sim"
)

// User-submitted programs. A ProgramSpec is the untrusted-client analogue of
// a built-in apps.App: a JSON description of a barrier-delimited region
// structure (compute bursts, partitioned array sweeps with halo sharing,
// gathers, critical sections, serial sections) that the server turns into
// sim.Programs for the standard campaign pipeline.
//
// Everything here is attacker-controlled, so the spec is bounded twice:
// hard shape caps on the document itself (Validate, 422 — a spec over these
// caps is not a bigger job, it is malformed), and the closed-form
// RunEstimator implementation (EstimateRun), which prices a run from the
// spec's counts without allocating anything proportional to them. App (the
// apps.App adapter) is only built after both gates have passed.

// Shape caps for user-submitted program specs. These bound the *description*,
// not the work — work is bounded by Budget.
const (
	MaxSpecArrays       = 16
	MaxSpecRegions      = 64
	MaxSpecOpsPerRegion = 16
	MaxSpecNameLen      = 64
	// MaxSpecInstr caps per-op instruction counts; 2^44 instructions is
	// ~hours of simulated time, far past any cycle budget.
	MaxSpecInstr = uint64(1) << 44
	// MaxSpecElems caps one array's base element count (2^31 elements =
	// 16 GiB); the dataset budget gates real size.
	MaxSpecElems = uint64(1) << 31
)

// ProgramSpec describes a user-submitted program.
type ProgramSpec struct {
	// Name labels the program; the adapter serves it as "user:"+Name.
	Name string `json:"name"`
	// Arrays declares the data arrays at the base data-set size; campaign
	// runs scale every array by the run's dataset fraction.
	Arrays []ArraySpec `json:"arrays"`
	// Regions are the barrier-delimited phases, in execution order.
	Regions []RegionSpec `json:"regions"`
}

// ArraySpec declares one named array.
type ArraySpec struct {
	Name  string `json:"name"`
	Elems uint64 `json:"elems"` // element count (8 bytes each) at the base size
}

// RegionSpec is one barrier-delimited phase.
type RegionSpec struct {
	Name string `json:"name"`
	// Serial runs the region's ops on processor 0 only, over whole arrays —
	// the paper's serial sections.
	Serial bool     `json:"serial,omitempty"`
	Ops    []OpSpec `json:"ops"`
}

// OpSpec is one operation every participating processor performs.
type OpSpec struct {
	// Kind is one of "compute", "read", "write", "gather", "critical".
	Kind string `json:"kind"`
	// Array names the target of read/write/gather ops.
	Array string `json:"array,omitempty"`
	// Instr is the instruction count of compute/critical ops.
	Instr uint64 `json:"instr,omitempty"`
	// InstrPer is the compute instructions interleaved per access of
	// read/write/gather ops (the loop body).
	InstrPer uint64 `json:"instr_per,omitempty"`
	// HaloElems extends a read/write op's window this many elements into the
	// next processor's block — the boundary sharing of stencil codes.
	HaloElems uint64 `json:"halo_elems,omitempty"`
	// GatherEvery makes a gather touch one element per this many of the
	// processor's block (default 64) — irregular, TLB-hostile access.
	GatherEvery uint64 `json:"gather_every,omitempty"`
}

// Validate checks the spec's shape against the hard caps and its internal
// references. Violations are semantic: 422 rejections with stable codes.
func (s *ProgramSpec) Validate() *Rejection {
	badShape := func(code, format string, args ...any) *Rejection {
		return Reject(http.StatusUnprocessableEntity, code, format, args...)
	}
	if s.Name == "" || len(s.Name) > MaxSpecNameLen {
		return badShape("spec_name", "program name must be 1..%d characters", MaxSpecNameLen)
	}
	if len(s.Arrays) == 0 || len(s.Arrays) > MaxSpecArrays {
		return badShape("spec_arrays", "program must declare 1..%d arrays, has %d", MaxSpecArrays, len(s.Arrays))
	}
	if len(s.Regions) == 0 || len(s.Regions) > MaxSpecRegions {
		return badShape("spec_regions", "program must declare 1..%d regions, has %d", MaxSpecRegions, len(s.Regions))
	}
	arrays := map[string]bool{}
	for i, a := range s.Arrays {
		if a.Name == "" || len(a.Name) > MaxSpecNameLen {
			return badShape("spec_array_name", "array %d: name must be 1..%d characters", i, MaxSpecNameLen) //scalvet:ignore rejection early-exit: at most one fires per request, then returns
		}
		if arrays[a.Name] {
			return badShape("spec_array_dup", "array %q declared twice", a.Name) //scalvet:ignore rejection early-exit: at most one fires per request, then returns
		}
		arrays[a.Name] = true
		if a.Elems == 0 || a.Elems > MaxSpecElems {
			return badShape("spec_array_elems", "array %q: elems must be 1..%d, has %d", a.Name, MaxSpecElems, a.Elems) //scalvet:ignore rejection early-exit: at most one fires per request, then returns
		}
	}
	for ri, r := range s.Regions {
		if r.Name == "" || len(r.Name) > MaxSpecNameLen {
			return badShape("spec_region_name", "region %d: name must be 1..%d characters", ri, MaxSpecNameLen) //scalvet:ignore rejection early-exit: at most one fires per request, then returns
		}
		if len(r.Ops) == 0 || len(r.Ops) > MaxSpecOpsPerRegion {
			return badShape("spec_region_ops", "region %q must have 1..%d ops, has %d", r.Name, MaxSpecOpsPerRegion, len(r.Ops)) //scalvet:ignore rejection early-exit: at most one fires per request, then returns
		}
		for oi, op := range r.Ops {
			if op.Instr > MaxSpecInstr || op.InstrPer > MaxSpecInstr {
				return badShape("spec_op_instr", "region %q op %d: instruction counts capped at %d", r.Name, oi, MaxSpecInstr) //scalvet:ignore rejection early-exit: at most one fires per request, then returns
			}
			switch op.Kind {
			case "compute", "critical":
				if op.Instr == 0 {
					return badShape("spec_op_instr", "region %q op %d: %s op needs instr > 0", r.Name, oi, op.Kind) //scalvet:ignore rejection early-exit: at most one fires per request, then returns
				}
				if op.Array != "" {
					return badShape("spec_op_array", "region %q op %d: %s op takes no array", r.Name, oi, op.Kind) //scalvet:ignore rejection early-exit: at most one fires per request, then returns
				}
			case "read", "write", "gather":
				if !arrays[op.Array] {
					return badShape("spec_op_array", "region %q op %d: references undeclared array %q", r.Name, oi, op.Array) //scalvet:ignore rejection early-exit: at most one fires per request, then returns
				}
				if op.Kind == "gather" {
					if op.GatherEvery > MaxSpecElems {
						return badShape("spec_op_gather", "region %q op %d: gather_every capped at %d", r.Name, oi, MaxSpecElems) //scalvet:ignore rejection early-exit: at most one fires per request, then returns
					}
				} else if op.GatherEvery != 0 {
					return badShape("spec_op_gather", "region %q op %d: gather_every only applies to gather ops", r.Name, oi) //scalvet:ignore rejection early-exit: at most one fires per request, then returns
				}
				if op.HaloElems > MaxSpecElems {
					return badShape("spec_op_halo", "region %q op %d: halo_elems capped at %d", r.Name, oi, MaxSpecElems) //scalvet:ignore rejection early-exit: at most one fires per request, then returns
				}
			default:
				return badShape("spec_op_kind", "region %q op %d: unknown kind %q (want compute, read, write, gather, critical)", r.Name, oi, op.Kind) //scalvet:ignore rejection early-exit: at most one fires per request, then returns
			}
		}
	}
	return nil
}

// TotalElems returns the spec's base element count across arrays.
func (s *ProgramSpec) TotalElems() uint64 {
	var total uint64
	for _, a := range s.Arrays {
		total += a.Elems
	}
	return total
}

// App adapts a validated spec to the apps.App interface, so the standard
// campaign/plan/model pipeline runs user programs unchanged. The adapter
// also implements RunEstimator, which is what EstimatePlan uses in place of
// Build during admission.
func (s *ProgramSpec) App() apps.App { return &specApp{spec: s} }

type specApp struct {
	spec *ProgramSpec
}

func (a *specApp) Name() string        { return "user:" + a.spec.Name }
func (a *specApp) Description() string { return "user-submitted program spec" }

// ParallelModel reports "MP" unless any region is serial, matching how the
// paper distinguishes MP DOACROSS codes from PCF codes with serial sections.
func (a *specApp) ParallelModel() string {
	for _, r := range a.spec.Regions {
		if r.Serial {
			return "PCF"
		}
	}
	return "MP"
}

// DefaultBytes is the declared base size (arrays at their spec'd element
// counts), independent of the machine.
func (a *specApp) DefaultBytes(machine.Config) uint64 {
	return a.spec.TotalElems() * apps.ElemBytes
}

// scaledElems scales one array's element count to a run's dataset fraction,
// aligned up to whole cache lines so block boundaries stay line-aligned.
func scaledElems(base, dataBytes, defaultBytes, lineElems uint64) uint64 {
	e := base
	if dataBytes != defaultBytes && defaultBytes > 0 {
		e = uint64(float64(base) * (float64(dataBytes) / float64(defaultBytes)))
	}
	if e < lineElems {
		e = lineElems
	}
	return (e + lineElems - 1) / lineElems * lineElems
}

// Build generates the program for one campaign run. The caller (admission)
// has already bounded dataBytes; build allocations are O(dataBytes).
func (a *specApp) Build(cfg machine.Config, procs int, dataBytes uint64) (*sim.Program, error) {
	s := a.spec
	lineElems := uint64(cfg.L2.LineBytes) / apps.ElemBytes
	if lineElems == 0 {
		lineElems = 1
	}
	defaultBytes := a.DefaultBytes(cfg)

	layouts := map[string]*arrayLayout{}
	var achieved uint64
	for _, ar := range s.Arrays {
		elems := scaledElems(ar.Elems, dataBytes, defaultBytes, lineElems)
		layouts[ar.Name] = &arrayLayout{elems: elems}
		achieved += elems * apps.ElemBytes
	}
	// A run whose per-processor blocks would vanish is below the program's
	// grid; the campaign skips such sizes, like any other application.
	for name, l := range layouts {
		if l.elems < uint64(procs)*lineElems {
			return nil, fmt.Errorf("admission: user program %q: array %q too small for %d processors at %d bytes",
				s.Name, name, procs, dataBytes)
		}
	}

	prog, err := sim.NewProgram(a.Name(), procs, achieved, cfg.PageBytes)
	if err != nil {
		return nil, err
	}
	for _, ar := range s.Arrays {
		l := layouts[ar.Name]
		reg, err := prog.Alloc(ar.Name, l.elems*apps.ElemBytes)
		if err != nil {
			return nil, err
		}
		l.base = reg.Base
		l.blocks = apps.BlockPartitionAligned(l.elems, procs, lineElems)
	}

	for _, rs := range s.Regions {
		region := prog.AddRegion(rs.Name)
		workers := procs
		if rs.Serial {
			workers = 1
		}
		for p := 0; p < workers; p++ {
			st := region.Proc(p)
			for _, op := range rs.Ops {
				buildOp(st, op, layouts[op.Array], p, procs, rs.Serial)
			}
		}
	}
	return prog, nil
}

// arrayLayout is one array's placement in a built run: simulated base
// address, scaled element count, and per-processor blocks.
type arrayLayout struct {
	base   uint64
	elems  uint64
	blocks []apps.Range
}

// window returns the element range one processor touches: its whole array
// when serial, otherwise its aligned block extended by the halo (clamped to
// the array) — boundary elements shared with the next processor.
func (l *arrayLayout) window(p, procs int, serial bool, halo uint64) (start, count uint64) {
	if serial {
		return 0, l.elems
	}
	blk := l.blocks[p]
	start, count = blk.Start, blk.Count
	if halo > 0 && p != procs-1 {
		count += halo
		if start+count > l.elems {
			count = l.elems - start
		}
	}
	return start, count
}

// buildOp appends one spec op to a processor's stream.
func buildOp(st *sim.Stream, op OpSpec, l *arrayLayout, p, procs int, serial bool) {
	switch op.Kind {
	case "compute":
		st.Compute(op.Instr)
	case "critical":
		st.Critical(op.Instr)
	case "read", "write":
		start, count := l.window(p, procs, serial, op.HaloElems)
		st.Seq(l.base+start*apps.ElemBytes, count, apps.ElemBytes, op.Kind == "write", op.InstrPer)
	case "gather":
		start, count := l.window(p, procs, serial, 0)
		every := op.GatherEvery
		if every == 0 {
			every = defaultGatherEvery
		}
		n := count / every
		if n == 0 {
			return
		}
		addrs := make([]uint64, 0, n)
		for i := uint64(0); i < n; i++ {
			addrs = append(addrs, l.base+(start+i*every)*apps.ElemBytes)
		}
		st.Gather(addrs, op.Kind == "write", op.InstrPer)
	}
}

// defaultGatherEvery spaces gathers one access per this many block elements
// when the spec does not say.
const defaultGatherEvery = 64

// EstimateRun prices one campaign run of this spec in closed form — no
// building, no allocation proportional to any client-controlled count. The
// unit prices match EstimateProgram's exactly.
func (a *specApp) EstimateRun(cfg machine.Config, procs int, dataBytes uint64) Cost {
	s := a.spec
	lineElems := uint64(cfg.L2.LineBytes) / apps.ElemBytes
	if lineElems == 0 {
		lineElems = 1
	}
	defaultBytes := a.DefaultBytes(cfg)

	var t opTally
	t.regions = len(s.Regions)
	var space uint64
	elems := map[string]uint64{}
	for _, ar := range s.Arrays {
		e := scaledElems(ar.Elems, dataBytes, defaultBytes, lineElems)
		elems[ar.Name] = e
		space += e * apps.ElemBytes
	}
	for _, rs := range s.Regions {
		workers := float64(procs)
		if rs.Serial {
			workers = 1
		}
		for _, op := range rs.Ops {
			switch op.Kind {
			case "compute":
				t.instr += workers * float64(op.Instr)
			case "critical":
				t.instr += workers * (float64(op.Instr) + float64(cfg.Sync.LockInstr))
				t.criticalInstr += workers * float64(op.Instr)
			case "read", "write", "gather":
				// Across all participants one pass covers the whole array
				// (serial: one processor covers it alone), plus halo overlap.
				accesses := float64(elems[op.Array]) + float64(procs)*float64(op.HaloElems)
				if op.Kind == "gather" {
					every := op.GatherEvery
					if every == 0 {
						every = defaultGatherEvery
					}
					accesses = float64(elems[op.Array]) / float64(every)
					t.gatherBytes += int64(accesses+float64(procs)) * 8
				}
				t.accesses += accesses
				t.instr += accesses * float64(op.InstrPer)
			}
		}
	}
	return t.cost(cfg, procs, space)
}

// String renders a short human identity for logs.
func (s *ProgramSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "user:%s(%d arrays, %d regions)", s.Name, len(s.Arrays), len(s.Regions))
	return b.String()
}
