package admission

import (
	"context"
	"net/http"
	"testing"

	"scaltool/internal/apps"
	"scaltool/internal/campaign"
	"scaltool/internal/machine"
)

// TestDefaultBudgetAdmitsBuiltins calibrates the default budgets: every
// built-in application at the default experiment machine and the maximum
// default processor count must be admitted with real headroom — the budgets
// exist to stop hostile work, not the paper's own campaigns.
func TestDefaultBudgetAdmitsBuiltins(t *testing.T) {
	cfg := machine.ScaledOrigin()
	b := DefaultBudget()
	for _, name := range apps.Names() {
		app, err := apps.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := campaign.NewPlan(app, cfg, DefaultMaxProcs, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cost, rej := b.EstimatePlan(cfg, app, plan, 4)
		if rej != nil {
			t.Fatalf("%s: estimate rejected: %v", name, rej)
		}
		if cost.Runs == 0 || cost.Cycles <= 0 || cost.AllocBytes <= 0 {
			t.Fatalf("%s: degenerate cost %+v", name, cost)
		}
		if rej := b.CheckRequest(cost); rej != nil {
			t.Fatalf("%s: default request over default budget: %v (cost %+v)", name, rej, cost)
		}
		if cost.Cycles > b.MaxRequestCycles/4 {
			t.Errorf("%s: only %.1fx cycle headroom (cost %.3g of %.3g)",
				name, b.MaxRequestCycles/cost.Cycles, cost.Cycles, b.MaxRequestCycles)
		}
		t.Logf("%s: %d runs, %.3g cycles, %d MiB alloc, %d KiB timeline",
			name, cost.Runs, cost.Cycles, cost.AllocBytes>>20, cost.TimelineBytes>>10)
	}
}

func TestCheckShape(t *testing.T) {
	b := DefaultBudget()
	if rej := b.CheckShape(DefaultMaxProcs, DefaultMaxS0Bytes); rej != nil {
		t.Fatalf("at-cap shape rejected: %v", rej)
	}
	rej := b.CheckShape(DefaultMaxProcs*2, 0)
	if rej == nil || rej.Status != http.StatusUnprocessableEntity || rej.Code != "procs_cap" {
		t.Fatalf("over-cap procs: got %+v, want 422 procs_cap", rej)
	}
	rej = b.CheckShape(1, DefaultMaxS0Bytes+1)
	if rej == nil || rej.Status != http.StatusRequestEntityTooLarge || rej.Code != "s0_budget" {
		t.Fatalf("over-budget s0: got %+v, want 413 s0_budget", rej)
	}
}

func TestCheckRequest(t *testing.T) {
	b := Budget{MaxRequestCycles: 100, MaxRequestBytes: 1000}
	if rej := b.CheckRequest(Cost{Cycles: 100, AllocBytes: 1000}); rej != nil {
		t.Fatalf("at-budget cost rejected: %v", rej)
	}
	rej := b.CheckRequest(Cost{Cycles: 101})
	if rej == nil || rej.Status != http.StatusRequestEntityTooLarge || rej.Code != "cost_cycles" {
		t.Fatalf("over-budget cycles: got %+v", rej)
	}
	rej = b.CheckRequest(Cost{AllocBytes: 1001})
	if rej == nil || rej.Status != http.StatusRequestEntityTooLarge || rej.Code != "cost_bytes" {
		t.Fatalf("over-budget bytes: got %+v", rej)
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger(Budget{MaxServerCycles: 100, MaxServerBytes: 1 << 30})
	big := Cost{Cycles: 60, AllocBytes: 10}

	if rej := l.TryAdmit(big); rej != nil {
		t.Fatalf("first admit: %v", rej)
	}
	rej := l.TryAdmit(big)
	if rej == nil || rej.Status != http.StatusTooManyRequests || rej.Code != "server_cycles" {
		t.Fatalf("second admit should exhaust cycles: got %+v", rej)
	}
	l.Release(big)
	if rej := l.TryAdmit(big); rej != nil {
		t.Fatalf("admit after release: %v", rej)
	}
	l.Release(big)

	// A single request larger than the whole server budget still runs when
	// the server is idle — per-request budgets gate size, the ledger gates
	// aggregation.
	huge := Cost{Cycles: 1000}
	if rej := l.TryAdmit(huge); rej != nil {
		t.Fatalf("idle-server admit of over-budget cost: %v", rej)
	}
	l.Release(huge)

	// Byte exhaustion has its own code.
	lb := NewLedger(Budget{MaxServerCycles: 1e18, MaxServerBytes: 100})
	if rej := lb.TryAdmit(Cost{AllocBytes: 80}); rej != nil {
		t.Fatal(rej)
	}
	rej = lb.TryAdmit(Cost{AllocBytes: 80})
	if rej == nil || rej.Code != "server_bytes" {
		t.Fatalf("byte exhaustion: got %+v", rej)
	}

	// Unbalanced Release clamps to empty instead of going negative.
	l.Release(Cost{Cycles: 1e9, AllocBytes: 1 << 40})
	cy, by, n := l.InFlight()
	if cy != 0 || by != 0 || n != 0 {
		t.Fatalf("clamp failed: %v %v %v", cy, by, n)
	}
}

func TestEstimatePlanPreBuildGate(t *testing.T) {
	cfg := machine.ScaledOrigin()
	app, err := apps.ByName("spmv")
	if err != nil {
		t.Skip("spmv not registered")
	}
	// A plan whose dataset exceeds the byte budget must be rejected from the
	// size alone — before Build gets a chance to allocate O(size) state.
	plan, err := campaign.NewPlan(app, cfg, 2, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	b := Budget{MaxRequestBytes: 1 << 20}
	_, rej := b.EstimatePlan(cfg, app, plan, 1)
	if rej == nil || rej.Status != http.StatusRequestEntityTooLarge || rej.Code != "cost_bytes" {
		t.Fatalf("pre-build gate: got %+v, want 413 cost_bytes", rej)
	}
}

func TestEstimateCostMonotonicInProcs(t *testing.T) {
	cfg := machine.ScaledOrigin()
	app, err := apps.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	b := DefaultBudget()
	var prev float64
	for _, procs := range []int{4, 16, 64} {
		plan, err := campaign.NewPlan(app, cfg, procs, 0)
		if err != nil {
			t.Fatal(err)
		}
		cost, rej := b.EstimatePlan(cfg, app, plan, 1)
		if rej != nil {
			t.Fatal(rej)
		}
		if cost.Cycles <= prev {
			t.Fatalf("cost not monotone in procs: %d procs -> %.3g after %.3g", procs, cost.Cycles, prev)
		}
		prev = cost.Cycles
	}
}

// testSpec is a well-formed user program: a stencil-ish sweep with halo
// sharing, a gather, a critical section, and a serial region.
func testSpec() *ProgramSpec {
	return &ProgramSpec{
		Name: "stencil",
		Arrays: []ArraySpec{
			{Name: "u", Elems: 4096},
			{Name: "v", Elems: 4096},
		},
		Regions: []RegionSpec{
			{Name: "sweep", Ops: []OpSpec{
				{Kind: "read", Array: "u", InstrPer: 4, HaloElems: 8},
				{Kind: "write", Array: "v", InstrPer: 2},
				{Kind: "compute", Instr: 2000},
			}},
			{Name: "scatter", Ops: []OpSpec{
				{Kind: "gather", Array: "u", GatherEvery: 16, InstrPer: 3},
				{Kind: "critical", Instr: 200},
			}},
			{Name: "reduce", Serial: true, Ops: []OpSpec{
				{Kind: "read", Array: "v", InstrPer: 1},
			}},
		},
	}
}

func TestSpecValidate(t *testing.T) {
	if rej := testSpec().Validate(); rej != nil {
		t.Fatalf("valid spec rejected: %v", rej)
	}
	cases := []struct {
		name   string
		mutate func(*ProgramSpec)
		code   string
	}{
		{"empty name", func(s *ProgramSpec) { s.Name = "" }, "spec_name"},
		{"no arrays", func(s *ProgramSpec) { s.Arrays = nil }, "spec_arrays"},
		{"no regions", func(s *ProgramSpec) { s.Regions = nil }, "spec_regions"},
		{"zero elems", func(s *ProgramSpec) { s.Arrays[0].Elems = 0 }, "spec_array_elems"},
		{"huge elems", func(s *ProgramSpec) { s.Arrays[0].Elems = MaxSpecElems + 1 }, "spec_array_elems"},
		{"dup array", func(s *ProgramSpec) { s.Arrays[1].Name = "u" }, "spec_array_dup"},
		{"empty region", func(s *ProgramSpec) { s.Regions[0].Ops = nil }, "spec_region_ops"},
		{"unknown kind", func(s *ProgramSpec) { s.Regions[0].Ops[0].Kind = "teleport" }, "spec_op_kind"},
		{"undeclared array", func(s *ProgramSpec) { s.Regions[0].Ops[0].Array = "ghost" }, "spec_op_array"},
		{"compute with array", func(s *ProgramSpec) { s.Regions[0].Ops[2].Array = "u" }, "spec_op_array"},
		{"zero-instr compute", func(s *ProgramSpec) { s.Regions[0].Ops[2].Instr = 0 }, "spec_op_instr"},
		{"instr over cap", func(s *ProgramSpec) { s.Regions[0].Ops[2].Instr = MaxSpecInstr + 1 }, "spec_op_instr"},
		{"gather_every on read", func(s *ProgramSpec) { s.Regions[0].Ops[0].GatherEvery = 4 }, "spec_op_gather"},
		{"halo over cap", func(s *ProgramSpec) { s.Regions[0].Ops[0].HaloElems = MaxSpecElems + 1 }, "spec_op_halo"},
	}
	for _, tc := range cases {
		s := testSpec()
		tc.mutate(s)
		rej := s.Validate()
		if rej == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if rej.Status != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 422", tc.name, rej.Status)
		}
		if rej.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, rej.Code, tc.code)
		}
	}
}

// TestSpecEndToEnd runs a user-submitted spec through the real campaign and
// model — the adapter must produce programs the simulator accepts at every
// plan point.
func TestSpecEndToEnd(t *testing.T) {
	cfg := machine.TinyTest()
	spec := testSpec()
	if rej := spec.Validate(); rej != nil {
		t.Fatal(rej)
	}
	app := spec.App()
	plan, err := campaign.NewPlan(app, cfg, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	cost, rej := DefaultBudget().EstimatePlan(cfg, app, plan, 2)
	if rej != nil {
		t.Fatal(rej)
	}
	rn := &campaign.Runner{Cfg: cfg, Workers: 2}
	res, err := rn.Execute(context.Background(), app, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BaseRuns) != 3 {
		t.Fatalf("base runs: %d", len(res.BaseRuns))
	}
	// The closed-form estimate must genuinely bound the simulation: every
	// run's real simulated cycles stay under the estimated total.
	var realCycles float64
	for _, r := range res.BaseRuns {
		realCycles += float64(r.Report.WallCycles) * float64(r.Report.Procs)
	}
	if realCycles > cost.Cycles {
		t.Fatalf("estimate %.3g cycles below reality %.3g", cost.Cycles, realCycles)
	}
}

// TestSpecEstimateMatchesWalk pins the closed-form estimator to the
// program-walk estimator: same unit prices, so for a built spec the two
// must agree within the quantization slack.
func TestSpecEstimateMatchesWalk(t *testing.T) {
	cfg := machine.ScaledOrigin()
	spec := testSpec()
	app := spec.App()
	for _, procs := range []int{1, 4} {
		size := spec.TotalElems() * apps.ElemBytes
		built, err := app.Build(cfg, procs, size)
		if err != nil {
			t.Fatal(err)
		}
		walk := EstimateProgram(cfg, built)
		closed := app.(RunEstimator).EstimateRun(cfg, procs, size)
		if closed.Cycles < walk.Cycles*0.5 || closed.Cycles > walk.Cycles*2 {
			t.Fatalf("procs=%d: closed-form %.3g vs walk %.3g cycles — diverged", procs, closed.Cycles, walk.Cycles)
		}
	}
}
