package admission

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"scaltool/internal/campaign"
	"scaltool/internal/machine"
)

// FuzzProgramAdmission drives the whole user-program admission surface —
// JSON decode, shape validation, closed-form estimation, budget checks, and
// (for small admitted programs) the actual build — with arbitrary bytes.
//
// Invariants, regardless of input:
//   - nothing panics;
//   - decisions are deterministic (same bytes, same verdict);
//   - every rejection carries a documented status (413, 422) and a
//     non-empty machine-readable code;
//   - estimated costs are finite and non-negative;
//   - an admitted spec builds into a program that passes sim validation.
func FuzzProgramAdmission(f *testing.F) {
	valid, _ := json.Marshal(testSpec())
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","arrays":[{"name":"a","elems":1024}],"regions":[{"name":"r","ops":[{"kind":"read","array":"a"}]}]}`))
	f.Add([]byte(`{"name":"big","arrays":[{"name":"a","elems":2147483648}],"regions":[{"name":"r","ops":[{"kind":"gather","array":"a","gather_every":1}]}]}`))
	f.Add([]byte(`{"name":"deep","arrays":[{"name":"a","elems":64}],"regions":[{"name":"r","serial":true,"ops":[{"kind":"critical","instr":17592186044416}]}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte("{\"name\":\"\u0000\",\"arrays\":null,\"regions\":[]}"))

	cfg := machine.ScaledOrigin()
	budget := DefaultBudget()

	f.Fuzz(func(t *testing.T, data []byte) {
		var spec ProgramSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return // malformed documents are the HTTP layer's 400, not ours
		}
		rej := spec.Validate()
		again := spec.Validate()
		switch {
		case (rej == nil) != (again == nil):
			t.Fatalf("validation not deterministic")
		case rej != nil && rej.Code != again.Code:
			t.Fatalf("validation code flapped: %q vs %q", rej.Code, again.Code)
		}
		if rej != nil {
			if rej.Status != http.StatusUnprocessableEntity {
				t.Fatalf("shape rejection with status %d: %v", rej.Status, rej)
			}
			if rej.Code == "" || rej.Detail == "" {
				t.Fatalf("rejection without code/detail: %+v", rej)
			}
			return
		}

		app := spec.App()
		plan, err := campaign.NewPlan(app, cfg, 4, 0)
		if err != nil {
			return
		}
		cost, prej := budget.EstimatePlan(cfg, app, plan, 2)
		if prej != nil {
			if prej.Status != http.StatusRequestEntityTooLarge && prej.Status != http.StatusUnprocessableEntity {
				t.Fatalf("estimate rejection with status %d: %v", prej.Status, prej)
			}
			if prej.Code == "" {
				t.Fatalf("estimate rejection without code: %+v", prej)
			}
			return
		}
		if math.IsNaN(cost.Cycles) || math.IsInf(cost.Cycles, 0) || cost.Cycles < 0 ||
			cost.AllocBytes < 0 || cost.TimelineBytes < 0 || cost.Runs <= 0 {
			t.Fatalf("degenerate admitted cost: %+v", cost)
		}
		if budget.CheckRequest(cost) != nil {
			return
		}
		// Admitted. Small programs are cheap enough to prove the build holds
		// up; the budget bounds the big ones by construction.
		if plan.S0 <= 4<<20 {
			prog, err := app.Build(cfg, 2, plan.S0)
			if err != nil {
				return // below the grid at this size — the campaign's skip path
			}
			if verr := prog.Validate(); verr != nil {
				t.Fatalf("admitted spec built an invalid program: %v", verr)
			}
		}
	})
}
