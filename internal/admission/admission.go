// Package admission is the serving path's resource gate: it decides, before
// any simulation starts, whether a request's predicted cost fits the
// server's budgets — and refuses with a machine-readable, correctly-typed
// rejection when it does not.
//
// The threat model is untrusted traffic (DESIGN.md §13). A hostile client
// can ask for an enormous processor count, a dataset that dwarfs memory, or
// a user-submitted program whose build alone would allocate gigabytes.
// Shedding that work *before* it is admitted is what keeps the daemon on the
// scalable part of its own curve: under overload, queueing unbounded work
// converts throughput into retrograde latency (Gunther's USL), and one
// admitted OOM kills every in-flight request with it.
//
// Three layers, cheapest first:
//
//  1. Shape — hard caps on the request document itself (processor count,
//     dataset bytes, program-spec sizes). Violations are semantic: 422.
//  2. Per-request cost — a cost estimator predicts the simulated cycles,
//     allocation footprint, and retained timeline bytes of the full 2n−1-run
//     campaign the request implies (regions × processors × dataset
//     fraction). A request over its budget is too large: 413.
//  3. Per-server cost — a ledger tracks the predicted cost of everything
//     admitted and still executing. A request that fits its own budget but
//     would push the server past its aggregate budget is shed: 429, and
//     worth retrying once the ledger drains.
//
// The estimates are deliberately pessimistic upper bounds (every memory
// access charged as an L2 hit, every barrier charged its hot-spot
// serialization). Budgets are calibrated against the same estimator, so the
// slack is consistent: the default budgets admit every built-in application
// at the default machine with an order of magnitude to spare.
package admission

import (
	"fmt"
	"net/http"
	"sync"
)

// Rejection is a machine-readable admission refusal. Status is the HTTP
// status the refusal maps to: 413 (request over its own budget), 422
// (semantically invalid shape), or 429 (server budget exhausted; retryable).
type Rejection struct {
	Status int    `json:"-"`
	Code   string `json:"code"`   // stable machine-readable cause, e.g. "cost_cycles"
	Detail string `json:"detail"` // human-readable explanation
}

// Error implements error.
func (r *Rejection) Error() string { return r.Detail }

// Reject builds a rejection.
func Reject(status int, code, format string, args ...any) *Rejection {
	return &Rejection{Status: status, Code: code, Detail: fmt.Sprintf(format, args...)}
}

// Cost is the predicted resource footprint of admitting one request — the
// unit both budgets and the ledger account in.
type Cost struct {
	// Cycles is the predicted simulated-cycle total across every run of the
	// request's campaign, summed over processors (an upper bound; this is
	// the unit CPU time scales with).
	Cycles float64
	// AllocBytes is the predicted peak allocation footprint: simulator cache
	// and directory state, gather address lists, and retained results.
	AllocBytes int64
	// TimelineBytes is the retained per-region × per-processor timeline and
	// counter data of the campaign's results (what the run cache will hold).
	TimelineBytes int64
	// Runs counts the campaign's planned simulation runs.
	Runs int
}

// Plus returns the sum of two costs.
func (c Cost) Plus(o Cost) Cost {
	return Cost{
		Cycles:        c.Cycles + o.Cycles,
		AllocBytes:    c.AllocBytes + o.AllocBytes,
		TimelineBytes: c.TimelineBytes + o.TimelineBytes,
		Runs:          c.Runs + o.Runs,
	}
}

// Budget bounds what one request may cost and what the server will hold in
// flight. Zero fields select the defaults.
type Budget struct {
	// MaxProcs caps the processor count a request may analyze: the campaign
	// is 2n−1 runs and 2^n+n−2 simulated processors, so this is the
	// steepest-growing knob a client controls.
	MaxProcs int
	// MaxS0Bytes caps the requested dataset size, checked before anything is
	// built — program builders allocate address lists proportional to the
	// dataset, so this bound is what makes cost estimation itself safe.
	MaxS0Bytes uint64
	// MaxRequestCycles caps one request's predicted simulated cycles.
	MaxRequestCycles float64
	// MaxRequestBytes caps one request's predicted allocation footprint.
	MaxRequestBytes int64
	// MaxServerCycles caps the predicted cycles of all admitted in-flight
	// requests together.
	MaxServerCycles float64
	// MaxServerBytes caps the predicted allocation footprint of all admitted
	// in-flight requests together — the daemon's memory budget.
	MaxServerBytes int64
}

// Default budgets: every built-in application at the default (scaled)
// machine and ≤ 64 processors fits its request budget with ≥ 10× headroom,
// and the server comfortably holds a handful of worst-case requests.
const (
	DefaultMaxProcs         = 64
	DefaultMaxS0Bytes       = 1 << 28 // 256 MiB dataset
	DefaultMaxRequestCycles = 4e12
	DefaultMaxRequestBytes  = 512 << 20
	DefaultMaxServerCycles  = 16e12
	DefaultMaxServerBytes   = 2 << 30
)

// DefaultBudget returns the default budgets.
func DefaultBudget() Budget {
	return Budget{
		MaxProcs:         DefaultMaxProcs,
		MaxS0Bytes:       DefaultMaxS0Bytes,
		MaxRequestCycles: DefaultMaxRequestCycles,
		MaxRequestBytes:  DefaultMaxRequestBytes,
		MaxServerCycles:  DefaultMaxServerCycles,
		MaxServerBytes:   DefaultMaxServerBytes,
	}
}

// withDefaults fills zero fields.
func (b Budget) withDefaults() Budget {
	d := DefaultBudget()
	if b.MaxProcs <= 0 {
		b.MaxProcs = d.MaxProcs
	}
	if b.MaxS0Bytes == 0 {
		b.MaxS0Bytes = d.MaxS0Bytes
	}
	if b.MaxRequestCycles <= 0 {
		b.MaxRequestCycles = d.MaxRequestCycles
	}
	if b.MaxRequestBytes <= 0 {
		b.MaxRequestBytes = d.MaxRequestBytes
	}
	if b.MaxServerCycles <= 0 {
		b.MaxServerCycles = d.MaxServerCycles
	}
	if b.MaxServerBytes <= 0 {
		b.MaxServerBytes = d.MaxServerBytes
	}
	return b
}

// CheckShape is the cheap pre-build gate: processor count and dataset size
// against their hard caps. procs must already be validated as a power of two
// by the request decoder; s0 == 0 means "the application's default" and is
// checked by the caller once resolved.
func (b Budget) CheckShape(procs int, s0 uint64) *Rejection {
	b = b.withDefaults()
	if procs > b.MaxProcs {
		return Reject(http.StatusUnprocessableEntity, "procs_cap",
			"procs %d exceeds this server's limit of %d", procs, b.MaxProcs)
	}
	if s0 > b.MaxS0Bytes {
		return Reject(http.StatusRequestEntityTooLarge, "s0_budget",
			"dataset size %d exceeds this server's per-request budget of %d bytes", s0, b.MaxS0Bytes)
	}
	return nil
}

// CheckRequest gates one request's predicted cost against the per-request
// budget: over-budget work is 413, too large for this server by policy.
func (b Budget) CheckRequest(c Cost) *Rejection {
	b = b.withDefaults()
	if c.Cycles > b.MaxRequestCycles {
		return Reject(http.StatusRequestEntityTooLarge, "cost_cycles",
			"predicted %.3g simulated cycles exceed the per-request budget of %.3g", c.Cycles, b.MaxRequestCycles)
	}
	if c.AllocBytes > b.MaxRequestBytes {
		return Reject(http.StatusRequestEntityTooLarge, "cost_bytes",
			"predicted %d-byte allocation footprint exceeds the per-request budget of %d", c.AllocBytes, b.MaxRequestBytes)
	}
	return nil
}

// Ledger tracks the predicted cost of admitted, still-executing requests
// against the server-wide budget. Safe for concurrent use.
type Ledger struct {
	budget Budget

	mu     sync.Mutex
	cycles float64
	bytes  int64
	n      int
}

// NewLedger builds a ledger for a budget (zero fields take defaults).
func NewLedger(b Budget) *Ledger {
	return &Ledger{budget: b.withDefaults()}
}

// Budget returns the ledger's effective (default-filled) budget.
func (l *Ledger) Budget() Budget { return l.budget }

// TryAdmit reserves a request's cost against the server budget, or rejects
// with a 429-shaped refusal — the request is fine, the server is full, and a
// retry after the ledger drains will succeed. Callers must Release exactly
// once per successful TryAdmit.
func (l *Ledger) TryAdmit(c Cost) *Rejection {
	l.mu.Lock()
	defer l.mu.Unlock()
	// n == 0 bypasses the aggregate check so a single request within its own
	// per-request budget is never livelocked by an over-tight server budget.
	if l.n > 0 {
		if l.cycles+c.Cycles > l.budget.MaxServerCycles {
			return Reject(http.StatusTooManyRequests, "server_cycles",
				"admitting %.3g predicted cycles would exceed the server budget (%.3g of %.3g in flight)",
				c.Cycles, l.cycles, l.budget.MaxServerCycles)
		}
		if l.bytes+c.AllocBytes > l.budget.MaxServerBytes {
			return Reject(http.StatusTooManyRequests, "server_bytes",
				"admitting a %d-byte footprint would exceed the server budget (%d of %d bytes in flight)",
				c.AllocBytes, l.bytes, l.budget.MaxServerBytes)
		}
	}
	l.cycles += c.Cycles
	l.bytes += c.AllocBytes
	l.n++
	return nil
}

// Release returns an admitted request's cost to the ledger.
func (l *Ledger) Release(c Cost) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cycles -= c.Cycles
	l.bytes -= c.AllocBytes
	l.n--
	if l.n < 0 || l.cycles < 0 || l.bytes < 0 { // release without admit is a caller bug; clamp, don't corrupt
		l.cycles, l.bytes, l.n = 0, 0, 0
	}
}

// InFlight reports the ledger's current occupancy.
func (l *Ledger) InFlight() (cycles float64, bytes int64, requests int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cycles, l.bytes, l.n
}
