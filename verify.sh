#!/bin/sh
# verify.sh — the repo's full correctness gate (ROADMAP tier-1 plus the
# static-analysis and race checks added with cmd/scalvet). Run from the
# repository root; exits non-zero on the first failure.
set -eu

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race (sim, campaign, obs; resume sweeps run in their own gate below)"
go test -race -skip 'Chaos.*Resume' ./internal/sim/... ./internal/campaign/... ./internal/obs/...

echo "==> byte-identity gate (golden SHA-256 of Result.Encode, app-set x proc-count matrix, under the race detector; goldens are never regenerated)"
go test -run 'TestSimByteIdentity|TestSimRepeatDeterminism' -race .

echo "==> heartbeat-starvation regression (one giant region must outlive an armed watchdog: in-region lane beats + merge beats)"
go test -run 'TestWatchdogDoesNotStarveOnOneGiantRegion' ./internal/campaign/
go test -run 'TestHeartbeat' ./internal/sim/

echo "==> chaos smoke (fault-injected campaigns under the race detector)"
go test -run Chaos -skip 'Chaos.*Resume' -race ./internal/campaign/...

echo "==> kill-resume chaos gate (killed at every journal op; resume must be byte-identical)"
go test -run 'Chaos.*Resume' -race ./internal/campaign/...

echo "==> observability e2e (tiny campaign; trace + metrics must parse)"
go test -run TestObsEndToEnd ./cmd/scaltool/

echo "==> run-cache race gate (singleflight + LRU eviction under the race detector)"
go test -race ./internal/runcache/... ./internal/serve/...

echo "==> HTTP chaos gate (hostile transport + documents under the race detector)"
go test -run 'TestChaos|TestPanicIsolation|TestCorruptSpill' -race ./internal/serve/...

echo "==> fuzz smoke gate (committed seed corpora + 10s of new coverage per target)"
go test -run '^$' -fuzz FuzzProgramAdmission -fuzztime 10s ./internal/admission/
go test -run '^$' -fuzz FuzzAnalyzeRequest -fuzztime 10s ./internal/serve/

echo "==> serving e2e (scaltoold: bind, concurrent cached analyses, SIGTERM drain; budget flags; atomic trace flush)"
go test -run 'TestScaltooldServeE2E|TestScaltooldBudgetFlags|TestScaltooldTraceFlush' ./cmd/scaltoold/

echo "==> diagnosis e2e gate (/v1/diagnose: deterministic ranked culprits tiling the scaling loss, under the race detector)"
go test -run 'TestDiagnose' -race ./internal/diagnose/... ./internal/serve/...

echo "==> fleet chaos gate (replicas SIGKILLed under load; zero non-retryable failures, byte-identical answers)"
go test -run 'TestFleetChaos' -race ./internal/fleet/

echo "==> fleet race gate (router, supervisor, USL fit, breakers under the race detector)"
go test -race -skip 'TestFleetChaos' ./internal/fleet/ ./internal/client/

echo "==> router e2e (scalrouter: static + supervised-spawn fleets, SIGTERM drain)"
go test -run 'TestScalrouter' ./cmd/scalrouter/

echo "==> scalload smoke (stub + sim load points, USL fit, report shape)"
go test -run 'TestScalload' ./cmd/scalload/

echo "==> scalvet self-host (the analyzer and its driver hold themselves to zero findings)"
go run ./cmd/scalvet ./internal/analysis/... ./cmd/scalvet

echo "==> scalvet baseline gate (whole repo; any finding beyond scalvet.baseline.json fails)"
go run ./cmd/scalvet -baseline check ./...

echo "verify: all gates passed"
