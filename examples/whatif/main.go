// Whatif: §2.6 of the paper — evaluate hypothetical machine upgrades from
// one measurement campaign, without ever re-running the application. Should
// you buy more cache, faster memory, or better synchronization hardware?
package main

import (
	"fmt"
	"log"

	"scaltool"
)

func main() {
	cfg := scaltool.ScaledOrigin()
	app, err := scaltool.AppByName("t3dheat")
	if err != nil {
		log.Fatal(err)
	}
	a, err := scaltool.Analyze(cfg, app, 32)
	if err != nil {
		log.Fatal(err)
	}

	scenarios := []scaltool.Scenario{
		scaltool.DoubleL2(),
		scaltool.FasterMemory(),
		scaltool.FasterSync(),
		scaltool.WiderIssue(),
	}

	fmt.Printf("what-if studies for %q (predictions only — no re-runs)\n\n", app.Name())
	fmt.Printf("%-18s", "scenario")
	for _, p := range mustEval(a, scenarios[0]) {
		fmt.Printf("  n=%-5d", p.Procs)
	}
	fmt.Println("   <- predicted speedup vs today")
	for _, sc := range scenarios {
		fmt.Printf("%-18s", sc.Name)
		for _, p := range mustEval(a, sc) {
			fmt.Printf("  %-7.2f", p.SpeedupVsBaseline())
		}
		fmt.Println()
	}

	fmt.Println("\nHow to read it: T3dheat is conflict-miss bound at low processor")
	fmt.Println("counts (faster memory wins) and barrier-bound at 32 (faster")
	fmt.Println("synchronization wins ~2x). Doubling the L2 pays off only around")
	fmt.Println("8 processors, where it makes the per-processor working set fit.")
}

func mustEval(a *scaltool.Analysis, sc scaltool.Scenario) []scaltool.Prediction {
	preds, err := a.WhatIf(sc)
	if err != nil {
		log.Fatal(err)
	}
	return preds
}
