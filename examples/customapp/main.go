// Customapp: write your own application against the public API and analyze
// it with Scal-Tool. The app is a parallel histogram: every processor scans
// its block of samples (streaming reads) and scatters increments into a
// shared bin array protected by a lock — a workload with both caching
// pressure and lock-serialization cost.
package main

import (
	"fmt"
	"log"

	"scaltool"
)

// histogram implements scaltool.App.
type histogram struct {
	binsBytes uint64
}

func (h *histogram) Name() string          { return "histogram" }
func (h *histogram) Description() string   { return "parallel histogram with a lock-protected bin array" }
func (h *histogram) ParallelModel() string { return "MP" }

func (h *histogram) DefaultBytes(cfg scaltool.MachineConfig) uint64 {
	return 3 * uint64(cfg.L2.SizeBytes)
}

func (h *histogram) Build(cfg scaltool.MachineConfig, procs int, dataBytes uint64) (*scaltool.Program, error) {
	const elem = 8
	samples := dataBytes / elem
	if samples < uint64(procs)*64 {
		return nil, fmt.Errorf("histogram: %d bytes too small for %d processors", dataBytes, procs)
	}
	prog, err := scaltool.NewProgram(h.Name(), procs, samples*elem, cfg.PageBytes)
	if err != nil {
		return nil, err
	}
	data, err := prog.Alloc("samples", samples*elem)
	if err != nil {
		return nil, err
	}
	bins, err := prog.Alloc("bins", h.binsBytes)
	if err != nil {
		return nil, err
	}

	per := samples / uint64(procs)
	// First-touch init: block-distribute the samples; processor 0 owns the
	// bins.
	init := prog.AddRegion("init")
	for p := 0; p < procs; p++ {
		init.Proc(p).Write(data.Base+uint64(p)*per*elem, per, elem, 1)
	}
	init.Proc(0).Write(bins.Base, h.binsBytes/elem, elem, 1)

	// Each pass: stream the local block, then merge local counts into the
	// shared bins under the global lock (the serialization bottleneck).
	for pass := 0; pass < 4; pass++ {
		reg := prog.AddRegion("count")
		for p := 0; p < procs; p++ {
			st := reg.Proc(p)
			st.Read(data.Base+uint64(p)*per*elem, per, elem, 3)
			st.Critical(400) // merge into shared bins
		}
	}
	return prog, nil
}

func main() {
	cfg := scaltool.ScaledOrigin()
	app := &histogram{binsBytes: 4096}

	// A single run first: what do the counters say?
	prog, err := app.Build(cfg, 8, app.DefaultBytes(cfg))
	if err != nil {
		log.Fatal(err)
	}
	res, err := scaltool.Simulate(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single run at 8 processors: %.0f cycles, %d locks, %d barriers\n\n",
		res.WallCycles, res.Report.Locks, res.Report.Barriers)

	// The full Scal-Tool analysis, exactly as for the built-in apps.
	a, err := scaltool.Analyze(cfg, app, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("procs  speedup   L2Lim%   Sync%    Imb%")
	sps := map[int]float64{}
	for _, sp := range a.Speedups() {
		sps[sp.Procs] = sp.Speedup
	}
	for _, bp := range a.Breakdown() {
		fmt.Printf("%5d  %7.2f  %6.1f%%  %5.1f%%  %5.1f%%\n",
			bp.Procs, sps[bp.Procs],
			100*bp.L2Lim()/bp.Base, 100*bp.Sync/bp.Base, 100*bp.Imb/bp.Base)
	}
	fmt.Println("\nThe lock is the story: every pass serializes the merge, so its cost")
	fmt.Println("grows with the processor count. Scal-Tool's ntsync method is tuned to")
	fmt.Println("barriers, so most of the lock-queue waiting surfaces in the Imb bar —")
	fmt.Println("the paper's §2.4.2 footnote prescribes a separate lock-kernel cpi_sync")
	fmt.Println("for lock-heavy codes (see apps.BuildLockKernel).")
}
