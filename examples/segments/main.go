// Segments: the paper's per-segment analysis (§2.1 — "these plots can be
// obtained for the overall application or for a segment of the application
// that is considered particularly important"). One campaign on T3dheat,
// then separate scalability breakdowns for its matvec, dot-product and
// explicit-barrier phases — which tell very different stories that the
// whole-application chart averages away.
package main

import (
	"fmt"
	"log"

	"scaltool"
)

func main() {
	cfg := scaltool.ScaledOrigin()
	app, err := scaltool.AppByName("t3dheat")
	if err != nil {
		log.Fatal(err)
	}
	a, err := scaltool.Analyze(cfg, app, 16)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("routines (regions) of t3dheat:", a.Segments())
	fmt.Println()

	show := func(title string, m *scaltool.Model) {
		fmt.Println(title)
		fmt.Println("procs   L2Lim%   Sync%    Imb%")
		for _, bp := range m.Breakdown() {
			fmt.Printf("%5d  %6.1f%%  %5.1f%%  %5.1f%%\n",
				bp.Procs, 100*bp.L2Lim()/bp.Base, 100*bp.Sync/bp.Base, 100*bp.Imb/bp.Base)
		}
		fmt.Println()
	}

	show("whole application:", a.Model)
	for _, seg := range []string{"matvec", "dot", "pcf_barrier"} {
		m, err := a.SegmentModel(seg)
		if err != nil {
			log.Fatal(err)
		}
		show(fmt.Sprintf("segment %q:", seg), m)
	}

	fmt.Println("The matvec phase is a caching-space story (fix: blocking/decomposition);")
	fmt.Println("the barrier phase is a synchronization story (fix: fewer/cheaper barriers).")
	fmt.Println("The whole-application chart is their average — the segments name the fix.")
}
