// Quickstart: run the full Scal-Tool workflow on one application and print
// the scalability breakdown — the 30-second tour of the library.
package main

import (
	"fmt"
	"log"

	"scaltool"
)

func main() {
	// The default experiment machine: a ratio-preserving scale-down of the
	// paper's SGI Origin 2000.
	cfg := scaltool.ScaledOrigin()

	app, err := scaltool.AppByName("swim")
	if err != nil {
		log.Fatal(err)
	}

	// Analyze runs the paper's Table 3 measurement campaign — the
	// application at its base data-set size for 1, 2, …, 16 processors,
	// uniprocessor runs at fractional sizes, and the small estimation
	// kernels — and fits the empirical model.
	a, err := scaltool.Analyze(cfg, app, 16)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Scal-Tool analysis of %q (s0 = %d bytes)\n", app.Name(), a.Plan.S0)
	fmt.Printf("model: cpi0 = %.3f, t2 = %.1f, tm(1) = %.1f, compulsory miss rate = %.4f\n\n",
		a.Model.CPI0, a.Model.T2, a.Model.Tm1, a.Model.Compulsory)

	fmt.Println("procs  speedup   L2Lim%   Sync%    Imb%")
	sps := map[int]float64{}
	for _, sp := range a.Speedups() {
		sps[sp.Procs] = sp.Speedup
	}
	for _, bp := range a.Breakdown() {
		fmt.Printf("%5d  %7.2f  %6.1f%%  %5.1f%%  %5.1f%%\n",
			bp.Procs, sps[bp.Procs],
			100*bp.L2Lim()/bp.Base, 100*bp.Sync/bp.Base, 100*bp.Imb/bp.Base)
	}

	fmt.Println("\nReading the chart: L2Lim is time lost to insufficient caching space")
	fmt.Println("(it shrinks as processors add cache), Sync to barriers, Imb to idle")
	fmt.Println("spinning. The campaign cost", a.Cost().Runs, "runs — the paper's 2n-1.")
}
