// Tuning: the paper's intended programmer workflow. Scal-Tool pinpoints
// Hydro2d's bottleneck (load imbalance from its serial sections); the
// programmer parallelizes the serial filter and re-analyzes to confirm the
// fix — exactly the loop §1 describes ("the programmer can then try to
// remove the bottlenecks").
package main

import (
	"fmt"
	"log"

	"scaltool"
	"scaltool/internal/apps"
)

func breakdownLine(a *scaltool.Analysis, procs int) string {
	for _, bp := range a.Breakdown() {
		if bp.Procs == procs {
			return fmt.Sprintf("Base=%.3g  L2Lim=%.1f%%  Sync=%.1f%%  Imb=%.1f%%",
				bp.Base, 100*bp.L2Lim()/bp.Base, 100*bp.Sync/bp.Base, 100*bp.Imb/bp.Base)
		}
	}
	return "?"
}

func speedupAt(a *scaltool.Analysis, procs int) float64 {
	for _, sp := range a.Speedups() {
		if sp.Procs == procs {
			return sp.Speedup
		}
	}
	return 0
}

func main() {
	cfg := scaltool.ScaledOrigin()
	const procs = 16

	// Step 1 — analyze the application as-is.
	before := apps.NewHydro2d()
	a1, err := scaltool.Analyze(cfg, before, procs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== before tuning (hydro2d as shipped) ===")
	fmt.Printf("speedup at %d processors: %.2f\n", procs, speedupAt(a1, procs))
	fmt.Printf("breakdown at %d: %s\n\n", procs, breakdownLine(a1, procs))

	// Scal-Tool's verdict: the dominant bar is Imb — load imbalance from
	// the serial filter sections, not caching or synchronization.

	// Step 2 — the fix: parallelize the serial filter (set its serial
	// fraction to a tenth; the remaining dribble models the part that
	// cannot be parallelized).
	after := apps.NewHydro2d()
	after.Params.SerialFrac = before.Params.SerialFrac / 10
	a2, err := scaltool.Analyze(cfg, after, procs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== after tuning (serial filter parallelized) ===")
	fmt.Printf("speedup at %d processors: %.2f\n", procs, speedupAt(a2, procs))
	fmt.Printf("breakdown at %d: %s\n\n", procs, breakdownLine(a2, procs))

	gain := speedupAt(a2, procs) / speedupAt(a1, procs)
	fmt.Printf("tuning gain at %d processors: %.2fx\n", procs, gain)
	if gain < 1.1 {
		log.Fatal("expected the imbalance fix to pay off")
	}
}
