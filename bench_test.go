package scaltool_test

// One benchmark per table and figure of the paper's evaluation section.
// Each benchmark regenerates its table/figure through the same code path as
// cmd/experiments and prints the rows once (run with -v to see them):
//
//	go test -bench 'BenchmarkTable|BenchmarkFig|BenchmarkSec' -benchmem
//
// The timings measure the cost of reproducing each experiment end to end —
// campaigns included (campaign results are cached across benchmarks within
// a run, exactly as the Scal-Tool methodology reuses its 2n−1 run files).
// Substrate microbenchmarks (cache, directory, simulator, campaign) follow.

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"scaltool/internal/apps"
	"scaltool/internal/cache"
	"scaltool/internal/campaign"
	"scaltool/internal/directory"
	"scaltool/internal/experiments"
	"scaltool/internal/machine"
	"scaltool/internal/obs"
	"scaltool/internal/sim"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	printed   sync.Map
)

func getSuite() *experiments.Suite {
	suiteOnce.Do(func() { suite = experiments.DefaultSuite() })
	return suite
}

// benchExperiment runs one experiment per iteration and prints its output
// the first time.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	s := getSuite()
	e, err := s.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var out string
	for i := 0; i < b.N; i++ {
		out, err = e.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, dup := printed.LoadOrStore(id, true); !dup && os.Getenv("SCALTOOL_QUIET") == "" {
		fmt.Printf("\n## %s\n\n%s\n", e.Name, out)
	}
}

func BenchmarkTable1ResourceCosts(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkTable2BottleneckEffects(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable3RunMatrix(b *testing.B)          { benchExperiment(b, "table3") }
func BenchmarkTable4AppCharacteristics(b *testing.B) { benchExperiment(b, "table4") }

func BenchmarkFig2BreakdownConcept(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig3aHitRateVsSize(b *testing.B)    { benchExperiment(b, "fig3a") }
func BenchmarkFig3bInfiniteHitRate(b *testing.B)  { benchExperiment(b, "fig3b") }
func BenchmarkFig4CpiInfInf(b *testing.B)         { benchExperiment(b, "fig4") }
func BenchmarkFig5T3dheatSpeedup(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig6T3dheatBreakdown(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig7T3dheatValidation(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFig8Hydro2dSpeedup(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFig9Hydro2dBreakdown(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10Hydro2dValidation(b *testing.B) {
	benchExperiment(b, "fig10")
}
func BenchmarkFig11SwimSpeedup(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12SwimBreakdown(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13SwimValidation(b *testing.B) { benchExperiment(b, "fig13") }

func BenchmarkSec26WhatIf(b *testing.B) { benchExperiment(b, "sec26") }

// Extension and ablation experiments (DESIGN.md §6–7).

func BenchmarkExtSharingEstimate(b *testing.B)    { benchExperiment(b, "ext-sharing") }
func BenchmarkExtSegmentAnalysis(b *testing.B)    { benchExperiment(b, "ext-segment") }
func BenchmarkAblationRawTmN(b *testing.B)        { benchExperiment(b, "abl-rawtm") }
func BenchmarkAblationPagePlacement(b *testing.B) { benchExperiment(b, "abl-placement") }
func BenchmarkAblationMuxCounters(b *testing.B)   { benchExperiment(b, "abl-mux") }
func BenchmarkAblationProtocolMSI(b *testing.B)   { benchExperiment(b, "abl-protocol") }

// --- substrate microbenchmarks ---------------------------------------------

// BenchmarkCacheHierarchyAccess measures the simulator's per-access cost on
// an L2-resident working set (the hot path of every campaign).
func BenchmarkCacheHierarchyAccess(b *testing.B) {
	cfg := machine.ScaledOrigin()
	h := cache.NewHierarchy(cfg)
	fill := func(_ uint64, write bool) cache.State {
		if write {
			return cache.Modified
		}
		return cache.Exclusive
	}
	span := uint64(cfg.L2.SizeBytes / 2)
	b.ReportAllocs()
	b.ResetTimer()
	var addr uint64
	for i := 0; i < b.N; i++ {
		h.Access(addr, i&7 == 0, fill)
		addr = (addr + 8) % span
	}
}

// BenchmarkDirectoryMerge measures region-merge throughput with 32
// processors touching disjoint line sets plus a shared boundary.
func BenchmarkDirectoryMerge(b *testing.B) {
	const procs = 32
	d := directory.New(procs)
	accesses := make([]directory.RegionAccess, procs)
	for p := 0; p < procs; p++ {
		lines := make([]uint64, 64)
		for i := range lines {
			lines[i] = uint64(p*64 + i)
		}
		accesses[p] = directory.RegionAccess{Proc: p, Writes: lines}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Merge(accesses)
	}
}

// BenchmarkSimulatorRun measures one full application run (Swim, 8
// processors, default size) — the unit of work a campaign fans out.
func BenchmarkSimulatorRun(b *testing.B) {
	cfg := machine.ScaledOrigin()
	app, err := apps.ByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := app.Build(cfg, 8, app.DefaultBytes(cfg))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(cfg, prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaign measures a complete Table 3 campaign (Hydro2d, up to 8
// processors) including the estimation kernels.
func BenchmarkCampaign(b *testing.B) {
	cfg := machine.ScaledOrigin()
	app, err := apps.ByName("hydro2d")
	if err != nil {
		b.Fatal(err)
	}
	plan, err := campaign.NewPlan(app, cfg, 8, 0)
	if err != nil {
		b.Fatal(err)
	}
	rn := &campaign.Runner{Cfg: cfg}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rn.Run(app, plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsSimRun quantifies the observability layer's overhead on the
// hot path (one full Swim run at 8 processors, as BenchmarkSimulatorRun):
// "disabled" runs with a bare context, "enabled" with a live tracer,
// metrics registry, and per-run span. ISSUE acceptance: enabled must stay
// within 3% of disabled (BENCH_obs.json records a measured pair).
func BenchmarkObsSimRun(b *testing.B) {
	cfg := machine.ScaledOrigin()
	app, err := apps.ByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, ctx context.Context) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			prog, err := app.Build(cfg, 8, app.DefaultBytes(cfg))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.RunContext(ctx, cfg, prog); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) {
		run(b, context.Background())
	})
	b.Run("enabled", func(b *testing.B) {
		o := &obs.Observer{Trace: obs.NewTracer(), Metrics: obs.NewMetrics()}
		run(b, obs.NewContext(context.Background(), o))
	})
}
