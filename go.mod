module scaltool

go 1.22
