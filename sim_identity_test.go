package scaltool_test

// The byte-identity equivalence gate for the simulator rewrite (ISSUE 10).
//
// The golden file testdata/sim_golden_sha256.json holds the SHA-256 of
// sim.EncodeResult for every application in the suite at every processor
// count of the campaign ladder, captured BEFORE the flat-layout/pooled/
// parallel-lane engine rewrite. The test asserts the rewritten engine still
// produces byte-for-byte identical Results — same counters, same ground
// truth, same region attribution, same segment tables — so the pooled run
// arena and the in-region parallel lanes provably change nothing observable.
//
// verify.sh runs this under -race, which additionally exercises the bounded
// worker pool's lane scheduling for data races.
//
// Regenerate (only legitimate when the *model* intentionally changes):
//
//	SCALTOOL_UPDATE_GOLDEN=1 go test -run TestSimByteIdentity .

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"scaltool/internal/apps"
	"scaltool/internal/machine"
	"scaltool/internal/sim"
)

const goldenPath = "testdata/sim_golden_sha256.json"

var identityProcs = []int{1, 2, 4, 8, 16}

// identityKey names one cell of the app × procs matrix.
func identityKey(app string, procs int) string { return fmt.Sprintf("%s/p%d", app, procs) }

// runDigest simulates one (app, procs) cell and returns the SHA-256 hex of
// its encoded Result.
func runDigest(t *testing.T, cfg machine.Config, appName string, procs int) string {
	t.Helper()
	app, err := apps.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := app.Build(cfg, procs, app.DefaultBytes(cfg))
	if err != nil {
		t.Fatalf("%s/p%d: build: %v", appName, procs, err)
	}
	res, err := sim.Run(cfg, prog)
	if err != nil {
		t.Fatalf("%s/p%d: run: %v", appName, procs, err)
	}
	h := sha256.New()
	if err := sim.EncodeResult(h, res); err != nil {
		t.Fatalf("%s/p%d: encode: %v", appName, procs, err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestSimByteIdentity(t *testing.T) {
	cfg := machine.ScaledOrigin()
	got := map[string]string{}
	for _, name := range apps.Names() {
		for _, procs := range identityProcs {
			got[identityKey(name, procs)] = runDigest(t, cfg, name, procs)
		}
	}

	if os.Getenv("SCALTOOL_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden digests to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with SCALTOOL_UPDATE_GOLDEN=1): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, suite produced %d (app set changed? regenerate)", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: in golden file but not produced by the suite", key)
			continue
		}
		if g != w {
			t.Errorf("%s: Result bytes diverged from pre-rewrite golden\n  want %s\n  got  %s", key, w, g)
		}
	}
	for key := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: produced by the suite but missing from golden file (regenerate)", key)
		}
	}
}

// TestSimRepeatDeterminism runs the same (app, procs) cell twice back to
// back and requires identical bytes. With the pooled run arena this is the
// test that a *reused* engine state behaves exactly like a fresh one — a
// stale cache line, directory entry, TLB slot, or page home surviving the
// arena reset would diverge here long before the cross-version goldens do.
func TestSimRepeatDeterminism(t *testing.T) {
	cfg := machine.ScaledOrigin()
	for _, name := range []string{"swim", "hydro2d"} {
		first := runDigest(t, cfg, name, 8)
		for i := 0; i < 3; i++ {
			if again := runDigest(t, cfg, name, 8); again != first {
				t.Fatalf("%s/p8: repeat %d produced different bytes: %s vs %s", name, i+1, again, first)
			}
		}
	}
}
