package scaltool_test

// BenchmarkSimRun measures one raw simulator run — no HTTP, no campaign, no
// cache — so the engine's per-access cost and allocation behavior are visible
// without serving-path noise. BENCH_sim.json records its trajectory together
// with BenchmarkServeAnalyze (the end-to-end number the acceptance bar is
// set on).

import (
	"testing"

	"scaltool/internal/apps"
	"scaltool/internal/machine"
	"scaltool/internal/sim"
)

func BenchmarkSimRun(b *testing.B) {
	cfg := machine.ScaledOrigin()
	for _, bc := range []struct {
		app   string
		procs int
	}{
		{"swim", 8},
		{"hydro2d", 8},
		{"swim", 1},
	} {
		app, err := apps.ByName(bc.app)
		if err != nil {
			b.Fatal(err)
		}
		prog, err := app.Build(cfg, bc.procs, app.DefaultBytes(cfg))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bc.app+"/p"+itoa(bc.procs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(cfg, prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}
